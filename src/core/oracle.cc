#include "src/core/oracle.h"

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"

namespace crius {

PerformanceOracle::PerformanceOracle(const Cluster& cluster, uint64_t seed, OracleConfig config)
    : model_(cluster),
      comm_(cluster, seed, config.comm_jitter),
      explorer_(&model_),
      estimator_(&model_, &comm_, seed, config.compute_jitter),
      tuner_(&explorer_) {}

JobContext PerformanceOracle::ContextFor(const ModelSpec& spec, GpuType type) const {
  return model_.MakeContext(spec, type);
}

const std::optional<PlanChoice>& PerformanceOracle::BestAdaptive(const ModelSpec& spec,
                                                                 GpuType type, int ngpus) {
  const JobContext ctx = ContextFor(spec, type);
  const ModelPointKey key{ctx.model_key, static_cast<int>(type), ngpus};
  auto it = adaptive_cache_.find(key);
  if (it == adaptive_cache_.end()) {
    CRIUS_COUNTER_INC("oracle.adaptive_cache_misses");
    std::optional<PlanChoice> best;
    if (ngpus >= 1 && IsPowerOfTwo(ngpus)) {
      ExploreResult r = explorer_.FullExplore(ctx, ngpus);
      best = std::move(r.best);
    }
    // Non-power-of-two shapes are not schedulable plans; cached as infeasible.
    it = adaptive_cache_.emplace(key, std::move(best)).first;
  } else {
    CRIUS_COUNTER_INC("oracle.adaptive_cache_hits");
  }
  return it->second;
}

std::optional<double> PerformanceOracle::DpOnlyIterTime(const ModelSpec& spec, GpuType type,
                                                        int ngpus) {
  const JobContext ctx = ContextFor(spec, type);
  const ModelPointKey key{ctx.model_key, static_cast<int>(type), ngpus};
  auto it = dp_only_cache_.find(key);
  if (it == dp_only_cache_.end()) {
    if (ngpus < 1 || !IsPowerOfTwo(ngpus)) {
      it = dp_only_cache_.emplace(key, std::nullopt).first;
      return it->second;
    }
    ParallelPlan plan;
    plan.gpu_type = type;
    StagePlan sp;
    sp.op_begin = 0;
    sp.op_end = ctx.graph->size();
    sp.gpus = ngpus;
    sp.dp = ngpus;
    sp.tp = 1;
    plan.stages.push_back(sp);
    const PlanEval eval = model_.Evaluate(ctx, plan);
    std::optional<double> value;
    if (eval.feasible) {
      value = eval.iter_time;
    }
    it = dp_only_cache_.emplace(key, value).first;
  }
  return it->second;
}

const CellEstimate& PerformanceOracle::EstimateCell(const ModelSpec& spec, const Cell& cell) {
  const JobContext ctx = ContextFor(spec, cell.gpu_type);
  const CellPointKey key{ctx.model_key, static_cast<int>(cell.gpu_type), cell.ngpus,
                         cell.nstages};
  auto it = estimate_cache_.find(key);
  if (it == estimate_cache_.end()) {
    CRIUS_COUNTER_INC("oracle.estimate_cache_misses");
    it = estimate_cache_.emplace(key, estimator_.Estimate(ctx, cell)).first;
  } else {
    CRIUS_COUNTER_INC("oracle.estimate_cache_hits");
  }
  return it->second;
}

const TuneResult& PerformanceOracle::TuneCell(const ModelSpec& spec, const Cell& cell) {
  const JobContext ctx = ContextFor(spec, cell.gpu_type);
  const CellPointKey key{ctx.model_key, static_cast<int>(cell.gpu_type), cell.ngpus,
                         cell.nstages};
  auto it = tune_cache_.find(key);
  if (it == tune_cache_.end()) {
    CRIUS_COUNTER_INC("oracle.tune_cache_misses");
    const CellEstimate& estimate = EstimateCell(spec, cell);
    it = tune_cache_.emplace(key, tuner_.Tune(ctx, cell, estimate)).first;
  } else {
    CRIUS_COUNTER_INC("oracle.tune_cache_hits");
  }
  return it->second;
}

double PerformanceOracle::AdaptiveThroughput(const ModelSpec& spec, GpuType type, int ngpus) {
  const std::optional<PlanChoice>& best = BestAdaptive(spec, type, ngpus);
  if (!best.has_value()) {
    return 0.0;
  }
  return static_cast<double>(spec.global_batch) / best->iter_time;
}

double PerformanceOracle::EstimatedThroughput(const ModelSpec& spec, const Cell& cell) {
  const CellEstimate& est = EstimateCell(spec, cell);
  if (!est.feasible) {
    return 0.0;
  }
  return static_cast<double>(spec.global_batch) / est.iter_time;
}

}  // namespace crius
