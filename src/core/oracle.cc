#include "src/core/oracle.h"

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"

namespace crius {

PerformanceOracle::PerformanceOracle(const Cluster& cluster, uint64_t seed, OracleConfig config)
    : model_(cluster),
      comm_(cluster, seed, config.comm_jitter),
      explorer_(&model_),
      estimator_(&model_, &comm_, seed, config.compute_jitter),
      tuner_(&explorer_) {}

JobContext PerformanceOracle::ContextFor(const ModelSpec& spec, GpuType type) const {
  return model_.MakeContext(spec, type);
}

uint64_t PerformanceOracle::ShardHash(const ModelPointKey& key) {
  uint64_t h = std::get<0>(key);
  h = HashCombine(h, static_cast<uint64_t>(std::get<1>(key)));
  h = HashCombine(h, static_cast<uint64_t>(std::get<2>(key)));
  return h;
}

uint64_t PerformanceOracle::ShardHash(const CellPointKey& key) {
  uint64_t h = std::get<0>(key);
  h = HashCombine(h, static_cast<uint64_t>(std::get<1>(key)));
  h = HashCombine(h, static_cast<uint64_t>(std::get<2>(key)));
  h = HashCombine(h, static_cast<uint64_t>(std::get<3>(key)));
  return h;
}

const std::optional<PlanChoice>& PerformanceOracle::BestAdaptive(const ModelSpec& spec,
                                                                 GpuType type, int ngpus) {
  const JobContext ctx = ContextFor(spec, type);
  const ModelPointKey key{ctx.model_key, static_cast<int>(type), ngpus};
  const auto [value, miss] = adaptive_cache_.GetOrCompute(key, ShardHash(key), [&] {
    std::optional<PlanChoice> best;
    if (ngpus >= 1 && IsPowerOfTwo(ngpus)) {
      ExploreResult r = explorer_.FullExplore(ctx, ngpus);
      best = std::move(r.best);
    }
    // Non-power-of-two shapes are not schedulable plans; cached as infeasible.
    return best;
  });
  if (miss) {
    CRIUS_COUNTER_INC("oracle.adaptive_cache_misses");
  } else {
    CRIUS_COUNTER_INC("oracle.adaptive_cache_hits");
  }
  return value;
}

std::optional<double> PerformanceOracle::DpOnlyIterTime(const ModelSpec& spec, GpuType type,
                                                        int ngpus) {
  const JobContext ctx = ContextFor(spec, type);
  const ModelPointKey key{ctx.model_key, static_cast<int>(type), ngpus};
  return dp_only_cache_
      .GetOrCompute(key, ShardHash(key),
                    [&]() -> std::optional<double> {
                      if (ngpus < 1 || !IsPowerOfTwo(ngpus)) {
                        return std::nullopt;
                      }
                      ParallelPlan plan;
                      plan.gpu_type = type;
                      StagePlan sp;
                      sp.op_begin = 0;
                      sp.op_end = ctx.graph->size();
                      sp.gpus = ngpus;
                      sp.dp = ngpus;
                      sp.tp = 1;
                      plan.stages.push_back(sp);
                      const PlanEval eval = model_.Evaluate(ctx, plan);
                      if (!eval.feasible) {
                        return std::nullopt;
                      }
                      return eval.iter_time;
                    })
      .first;
}

const CellEstimate& PerformanceOracle::EstimateCell(const ModelSpec& spec, const Cell& cell) {
  const JobContext ctx = ContextFor(spec, cell.gpu_type);
  const CellPointKey key{ctx.model_key, static_cast<int>(cell.gpu_type), cell.ngpus,
                         cell.nstages};
  const auto [value, miss] = estimate_cache_.GetOrCompute(
      key, ShardHash(key), [&] { return estimator_.Estimate(ctx, cell); });
  if (miss) {
    CRIUS_COUNTER_INC("oracle.estimate_cache_misses");
  } else {
    CRIUS_COUNTER_INC("oracle.estimate_cache_hits");
  }
  return value;
}

const TuneResult& PerformanceOracle::TuneCell(const ModelSpec& spec, const Cell& cell) {
  const JobContext ctx = ContextFor(spec, cell.gpu_type);
  const CellPointKey key{ctx.model_key, static_cast<int>(cell.gpu_type), cell.ngpus,
                         cell.nstages};
  const auto [value, miss] = tune_cache_.GetOrCompute(key, ShardHash(key), [&] {
    // EstimateCell re-enters the *estimate* cache, never this one, so the
    // shard-lock order is acyclic (tune shard -> estimate shard).
    const CellEstimate& estimate = EstimateCell(spec, cell);
    return tuner_.Tune(ctx, cell, estimate);
  });
  if (miss) {
    CRIUS_COUNTER_INC("oracle.tune_cache_misses");
  } else {
    CRIUS_COUNTER_INC("oracle.tune_cache_hits");
  }
  return value;
}

double PerformanceOracle::AdaptiveThroughput(const ModelSpec& spec, GpuType type, int ngpus) {
  const std::optional<PlanChoice>& best = BestAdaptive(spec, type, ngpus);
  if (!best.has_value()) {
    return 0.0;
  }
  return static_cast<double>(spec.global_batch) / best->iter_time;
}

double PerformanceOracle::EstimatedThroughput(const ModelSpec& spec, const Cell& cell) {
  const CellEstimate& est = EstimateCell(spec, cell);
  if (!est.feasible) {
    return 0.0;
  }
  return static_cast<double>(spec.global_batch) / est.iter_time;
}

void PerformanceOracle::EstimatedThroughputBatch(const ModelSpec& spec,
                                                 const std::vector<Cell>& cells,
                                                 std::vector<double>* out) {
  out->resize(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    (*out)[i] = EstimatedThroughput(spec, cells[i]);
  }
  CRIUS_COUNTER_ADD("oracle.batch_estimates", static_cast<int64_t>(cells.size()));
}

}  // namespace crius
