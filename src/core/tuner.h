// Cell-guided parallelism tuning (§5.2, Fig. 11).
//
// After a Cell is scheduled, the job still needs the best plan in the Cell's
// full (dp x tp)^stages space. Exploring it from scratch is what adaptive
// parallelism pays 40 minutes for; Crius instead treats the estimate's
// per-stage winner as that stage's "parallelism favor" and prunes the other
// half of the stage's range: a stage favoring data parallelism is only tuned
// between dp-only and half-hybrid (dp = tp = sqrt(N)), and symmetrically for
// tensor parallelism.

#ifndef SRC_CORE_TUNER_H_
#define SRC_CORE_TUNER_H_

#include "src/core/estimator.h"
#include "src/parallel/explorer.h"

namespace crius {

struct TuneResult {
  // Best plan found (evaluated on real hardware, i.e. the exact model).
  std::optional<PlanChoice> best;
  // Candidate plans physically evaluated during tuning.
  int plans_evaluated = 0;
  // GPU-seconds those evaluations cost.
  double tune_gpu_seconds = 0.0;
};

class CellTuner {
 public:
  explicit CellTuner(const Explorer* explorer);

  // Tunes `cell` within the half-spaces selected by `estimate`'s favors.
  TuneResult Tune(const JobContext& ctx, const Cell& cell, const CellEstimate& estimate) const;

  // Unpruned full in-Cell exploration (the Fig. 13 baseline).
  TuneResult TuneUnpruned(const JobContext& ctx, const Cell& cell) const;

  // Half-hybrid tensor degrees for a stage of `gpus` GPUs (Fig. 11): the
  // dp-favoring range is tp <= 2^floor(log2(N)/2), the tp-favoring range is
  // tp >= 2^ceil(log2(N)/2); for even log2(N) both include the half-hybrid.
  static int HalfHybridTpFloor(int gpus);
  static int HalfHybridTpCeil(int gpus);

 private:
  const Explorer* explorer_;
};

}  // namespace crius

#endif  // SRC_CORE_TUNER_H_
