// Offline communication profiles (§5.1, "profile all communication operators
// offline").
//
// Since the interconnect "hardly changes after hardware setup", the latency of
// a communication operator depends only on the collective kind, the group, and
// the traffic volume. Crius therefore measures every collective once per GPU
// type at power-of-two payload sizes and group sizes, and answers runtime
// queries by interpolation ("traffic-based interpolation", Fig. 10).
//
// In this reproduction "measuring" means sampling the exact interconnect model
// with a small deterministic measurement jitter; interpolating between the
// sampled sizes is a second, structural source of estimator error -- the same
// two error sources the real system has.

#ifndef SRC_CORE_COMM_PROFILE_H_
#define SRC_CORE_COMM_PROFILE_H_

#include <array>
#include <map>
#include <vector>

#include "src/hw/cluster.h"
#include "src/hw/interconnect.h"

namespace crius {

class CommProfile {
 public:
  // Measurement scatter applied to each sampled point.
  static constexpr double kMeasureJitter = 0.04;
  // Payload grid: kMinBytes * kGridStep^i up to kMaxBytes.
  static constexpr double kMinBytes = 4.0e3;
  static constexpr double kMaxBytes = 6.4e10;
  static constexpr double kGridStep = 4.0;

  // Profiles every (collective, group size, payload) point for every GPU type
  // present in `cluster`. `seed` drives the deterministic measurement jitter;
  // `jitter` overrides the default amplitude (noise-ablation experiments).
  CommProfile(const Cluster& cluster, uint64_t seed, double jitter = kMeasureJitter);

  // Interpolated estimate of a collective over `n` GPUs of `type` moving
  // `bytes`. `n` must be a power of two within the profiled range.
  double Estimate(CollectiveKind kind, GpuType type, double bytes, int n) const;

  // Interpolated point-to-point estimate.
  double EstimateSendRecv(GpuType type, double bytes, bool cross_node) const;

  // GPU-seconds the offline profiling sweep would cost on real hardware
  // (reported once; amortized over the cluster lifetime, §5.1).
  double offline_gpu_seconds() const { return offline_gpu_seconds_; }

 private:
  struct Curve {
    std::vector<double> log_bytes;
    std::vector<double> log_time;
  };
  // curves_[type][kind][n] -> sampled latency curve.
  std::array<std::array<std::map<int, Curve>, kNumCollectiveKinds>, kNumGpuTypes> curves_;
  double offline_gpu_seconds_ = 0.0;
};

}  // namespace crius

#endif  // SRC_CORE_COMM_PROFILE_H_
