#include "src/core/estimator.h"

#include <algorithm>
#include <cmath>

#include <utility>

#include "src/parallel/stage_partition.h"
#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/mathutil.h"
#include "src/util/trace.h"

namespace crius {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One profiled stage option (dp-only or tp-only).
struct AssemblyOption {
  int dp = 1;
  int tp = 1;
  bool is_tp = false;
  // Estimated per-microbatch stage time (profiled compute + interpolated comm).
  double t_stage = 0.0;
  // Estimated gradient-sync time per iteration.
  double t_dp_sync = 0.0;
};

}  // namespace

CellEstimator::CellEstimator(const PerfModel* model, const CommProfile* comm, uint64_t seed,
                             double compute_jitter)
    : model_(model), comm_(comm), profiler_(model, seed, compute_jitter) {
  CRIUS_CHECK(model != nullptr);
  CRIUS_CHECK(comm != nullptr);
}

CellEstimate CellEstimator::Estimate(const JobContext& ctx, const Cell& cell) const {
  CRIUS_CHECK(ctx.graph != nullptr);
  CRIUS_CHECK_MSG(ctx.gpu_type == cell.gpu_type, "context/cell GPU type mismatch");
  CRIUS_TRACE_SPAN("estimator.estimate");
  CRIUS_COUNTER_INC("estimator.evaluations");
  CRIUS_SCOPED_TIMER_MS("estimator.eval_ms");
  const OpGraph& g = *ctx.graph;

  CellEstimate out;
  if (cell.nstages > std::min<int>(cell.ngpus, static_cast<int>(g.size()))) {
    return out;
  }

  const std::vector<StageRange> ranges = PartitionStages(g, cell.ngpus, cell.nstages);
  const int nstages = cell.nstages;
  const int num_microbatches = 4 * nstages;
  const double microbatch =
      static_cast<double>(ctx.global_batch) / static_cast<double>(num_microbatches);

  // --- Profile the two grid plans (dp-only / tp-only per stage) -------------
  std::vector<std::vector<AssemblyOption>> options(ranges.size());
  {
    CRIUS_TRACE_SPAN("estimator.grid_sample");
    for (size_t s = 0; s < ranges.size(); ++s) {
      const StageRange& range = ranges[s];
      std::vector<std::pair<int, int>> splits;  // (dp, tp)
      splits.emplace_back(range.gpus, 1);
      if (range.gpus > 1) {
        splits.emplace_back(1, range.gpus);
      }
      for (const auto& [dp, tp] : splits) {
        const StageProfile prof = profiler_.ProfileStage(ctx, range, dp, tp, nstages);
        out.profile_gpu_seconds += prof.gpu_seconds;
        if (!prof.fits) {
          continue;  // the compiled plan reports OOM; drop it (§5.1)
        }
        AssemblyOption opt;
        opt.dp = dp;
        opt.tp = tp;
        opt.is_tp = tp > 1;
        const double local_samples = microbatch / static_cast<double>(dp);

        double t_comm = 0.0;
        if (tp > 1) {
          const double tp_bytes = g.TpCommBytes(range.op_begin, range.op_end) * local_samples;
          t_comm += comm_->Estimate(CollectiveKind::kAllReduce, ctx.gpu_type, tp_bytes, tp);
          const double a2a_bytes = g.A2aBytes(range.op_begin, range.op_end) * local_samples;
          if (a2a_bytes > 0.0) {
            t_comm += comm_->Estimate(CollectiveKind::kAllToAll, ctx.gpu_type, a2a_bytes, tp);
          }
        }
        opt.t_stage = prof.t_compute + t_comm;
        if (dp > 1) {
          const double grad_bytes =
              g.ParamBytes(range.op_begin, range.op_end) / static_cast<double>(tp);
          opt.t_dp_sync =
              comm_->Estimate(CollectiveKind::kAllReduce, ctx.gpu_type, grad_bytes, dp);
        }
        options[s].push_back(opt);
      }
      if (options[s].empty()) {
        return out;  // infeasible Cell: some stage fits under no sampled plan
      }
    }
  }

  // --- Assemble all 2^Ns combinations (Fig. 9) ------------------------------
  std::vector<int> offsets(ranges.size(), 0);
  for (size_t s = 1; s < ranges.size(); ++s) {
    offsets[s] = offsets[s - 1] + ranges[s - 1].gpus;
  }

  auto boundary = [&](size_t s, int tp_prev, int tp_next) {
    const double bytes = g.BoundaryBytes(ranges[s].op_begin) * microbatch;
    const bool cross_node = (offsets[s] % ctx.topo.gpus_per_node) == 0;
    const double slice = bytes / static_cast<double>(std::max(1, tp_prev));
    double t = comm_->EstimateSendRecv(ctx.gpu_type, slice, cross_node);
    if (tp_next != tp_prev && std::max(tp_prev, tp_next) > 1) {
      t += comm_->Estimate(CollectiveKind::kAllGather, ctx.gpu_type, bytes,
                           std::max(tp_prev, tp_next));
    }
    return 2.0 * t;
  };

  struct State {
    double sum = 0.0;
    double max_stage = 0.0;
    double max_sync = 0.0;
    int last_tp = 1;
    std::vector<int> choice;
  };

  double best_time = kInf;
  std::vector<int> best_choice;
  {
    CRIUS_TRACE_SPAN("estimator.assemble");
    std::vector<State> stack;
    stack.push_back(State{});
    while (!stack.empty()) {
      State st = std::move(stack.back());
      stack.pop_back();
      const size_t s = st.choice.size();
      if (s == ranges.size()) {
        ++out.plans_assembled;
        const double total = st.sum + static_cast<double>(num_microbatches - 1) * st.max_stage +
                             PerfModel::kDpSyncExposedFraction * st.max_sync +
                             PerfModel::kIterOverhead;
        if (total < best_time) {
          best_time = total;
          best_choice = st.choice;
        }
        continue;
      }
      for (size_t oi = 0; oi < options[s].size(); ++oi) {
        const AssemblyOption& opt = options[s][oi];
        State next = st;
        next.sum += opt.t_stage;
        if (s > 0) {
          next.sum += boundary(s, st.last_tp, opt.tp);
        }
        next.max_stage = std::max(next.max_stage, opt.t_stage);
        next.max_sync = std::max(next.max_sync, opt.t_dp_sync);
        next.last_tp = opt.tp;
        next.choice.push_back(static_cast<int>(oi));
        stack.push_back(std::move(next));
      }
    }
  }
  CRIUS_CHECK(best_choice.size() == ranges.size());

  // --- Materialize the winning assembled plan -------------------------------
  out.feasible = true;
  out.iter_time = best_time;
  out.plan.gpu_type = ctx.gpu_type;
  out.stage_prefers_tp.resize(ranges.size());
  out.stage_tp_range.resize(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    const AssemblyOption& opt = options[s][static_cast<size_t>(best_choice[s])];
    StagePlan sp;
    sp.op_begin = ranges[s].op_begin;
    sp.op_end = ranges[s].op_end;
    sp.gpus = ranges[s].gpus;
    sp.dp = opt.dp;
    sp.tp = opt.tp;
    out.plan.stages.push_back(sp);
    out.stage_prefers_tp[s] = opt.is_tp;

    // Tuning range (§5.2 pruning). With both grid probes available the favor
    // picks the half; when the dp-only probe OOMed, the comparison is void,
    // so profile the half-hybrid point too and favor the winning half.
    const int gpus = ranges[s].gpus;
    const int half_floor = HalfHybridFloor(gpus);
    const int half_ceil = HalfHybridCeil(gpus);
    if (gpus == 1) {
      out.stage_tp_range[s] = {1, 1};
    } else if (options[s].size() >= 2) {
      out.stage_tp_range[s] =
          opt.is_tp ? std::make_pair(half_ceil, gpus) : std::make_pair(1, half_floor);
    } else if (!opt.is_tp) {
      // Only dp-only fit (tensor side dropped): favor the data half.
      out.stage_tp_range[s] = {1, half_floor};
    } else if (gpus >= 4) {
      const int dp = gpus / half_ceil;
      const StageProfile hybrid =
          profiler_.ProfileStage(ctx, ranges[s], dp, half_ceil, nstages);
      out.profile_gpu_seconds += hybrid.gpu_seconds;
      bool hybrid_wins = false;
      if (hybrid.fits) {
        const double tp_bytes =
            g.TpCommBytes(ranges[s].op_begin, ranges[s].op_end) * microbatch / dp;
        double t = hybrid.t_compute +
                   comm_->Estimate(CollectiveKind::kAllReduce, ctx.gpu_type, tp_bytes,
                                   half_ceil);
        const double a2a_bytes =
            g.A2aBytes(ranges[s].op_begin, ranges[s].op_end) * microbatch / dp;
        if (a2a_bytes > 0.0) {
          t += comm_->Estimate(CollectiveKind::kAllToAll, ctx.gpu_type, a2a_bytes, half_ceil);
        }
        hybrid_wins = t < opt.t_stage;
      }
      // tp == 1 is known-OOM; the lower half starts at 2.
      out.stage_tp_range[s] =
          hybrid_wins ? std::make_pair(2, half_ceil) : std::make_pair(half_ceil, gpus);
    } else {
      out.stage_tp_range[s] = {2, gpus};
    }
  }
  CRIUS_HISTOGRAM_RECORD("estimator.plans_assembled", static_cast<double>(out.plans_assembled));
  CRIUS_HISTOGRAM_RECORD("estimator.profile_gpu_s", out.profile_gpu_seconds);
  return out;
}

}  // namespace crius
