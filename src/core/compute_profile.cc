#include "src/core/compute_profile.h"

#include "src/util/check.h"
#include "src/util/rng.h"

namespace crius {

SingleDeviceProfiler::SingleDeviceProfiler(const PerfModel* model, uint64_t seed, double jitter)
    : model_(model), seed_(HashCombine(seed, HashString("compute_profile"))), jitter_(jitter) {
  CRIUS_CHECK(model != nullptr);
  CRIUS_CHECK(jitter >= 0.0 && jitter < 1.0);
}

StageProfile SingleDeviceProfiler::ProfileStage(const JobContext& ctx, const StageRange& range,
                                                int dp, int tp, int nstages) const {
  const StageEval exact = model_->EvalStage(ctx, range, dp, tp, nstages);

  uint64_t key = ctx.model_key;
  key = HashCombine(key, static_cast<uint64_t>(ctx.gpu_type));
  key = HashCombine(key, static_cast<uint64_t>(range.op_begin));
  key = HashCombine(key, static_cast<uint64_t>(range.op_end));
  key = HashCombine(key, static_cast<uint64_t>(dp));
  key = HashCombine(key, static_cast<uint64_t>(tp));
  key = HashCombine(key, static_cast<uint64_t>(nstages));

  StageProfile profile;
  profile.t_compute = exact.t_compute_single * HashJitter(seed_, key, jitter_);
  profile.mem_bytes = exact.mem_bytes;
  profile.fits = exact.fits;
  const double num_ops = static_cast<double>(range.op_end - range.op_begin);
  profile.gpu_seconds = kCompileSecondsPerOp * num_ops +
                        static_cast<double>(kProfileReps) * exact.t_compute_single;
  return profile;
}

}  // namespace crius
