#include "src/core/cell.h"

#include <algorithm>

#include "src/model/models.h"
#include "src/parallel/stage_partition.h"
#include "src/util/check.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"

namespace crius {

std::string Cell::ToString() const {
  return GpuName(gpu_type) + "x" + std::to_string(ngpus) + "/P" + std::to_string(nstages);
}

uint64_t Cell::Key() const {
  uint64_t k = static_cast<uint64_t>(gpu_type);
  k = HashCombine(k, static_cast<uint64_t>(ngpus));
  k = HashCombine(k, static_cast<uint64_t>(nstages));
  return k;
}

std::vector<Cell> GenerateCellsUpTo(const TrainingJob& job, const Cluster& cluster,
                                    int max_gpus) {
  CRIUS_CHECK(IsPowerOfTwo(job.requested_gpus));
  const OpGraph& graph = GetOpGraph(job.spec);

  std::vector<Cell> cells;
  for (GpuType type : AllGpuTypes()) {
    if (!cluster.HasType(type)) {
      continue;
    }
    // Cap by *usable* capacity (physical minus failed devices): a candidate
    // larger than what degraded hardware can ever host is unschedulable, and
    // ranking it would waste profiling budget and skew Cell scores.
    const int usable = cluster.UsableGpus(type);
    if (usable < 1) {
      continue;  // every device of this type is failed
    }
    const int capacity = FloorPowerOfTwo(usable);
    // §6.1: three candidate sizes around the user-requested N_G.
    for (int ngpus : {job.requested_gpus / 2, job.requested_gpus, job.requested_gpus * 2}) {
      if (ngpus < 1 || ngpus > capacity || ngpus > max_gpus) {
        continue;
      }
      for (int nstages : CandidateStageCounts(graph, ngpus)) {
        cells.push_back(Cell{type, ngpus, nstages});
      }
    }
  }
  // De-duplicate (N_G/2 and N_G coincide when N_G == 1).
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.gpu_type != b.gpu_type) {
      return static_cast<int>(a.gpu_type) < static_cast<int>(b.gpu_type);
    }
    if (a.ngpus != b.ngpus) {
      return a.ngpus < b.ngpus;
    }
    return a.nstages < b.nstages;
  });
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

std::vector<Cell> GenerateCells(const TrainingJob& job, const Cluster& cluster) {
  return GenerateCellsUpTo(job, cluster, 1 << 30);
}

}  // namespace crius
