// Cell: Crius's core scheduling abstraction (§4).
//
// A Cell represents a job with a *determined* resource allocation (GPU type
// and count) and *determined* pipeline-stage count; only the per-stage
// data x tensor split remains to be explored. Sharding the scheduling space
// into Cells is what lets Crius estimate candidates accurately at low cost
// (§5.1) and prune post-scheduling tuning (§5.2).

#ifndef SRC_CORE_CELL_H_
#define SRC_CORE_CELL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/cluster.h"
#include "src/model/job.h"

namespace crius {

struct Cell {
  GpuType gpu_type = GpuType::kA100;
  int ngpus = 1;    // power of two
  int nstages = 1;  // power of two, <= ngpus

  bool operator==(const Cell& other) const {
    return gpu_type == other.gpu_type && ngpus == other.ngpus && nstages == other.nstages;
  }

  // e.g. "A100x8/P4".
  std::string ToString() const;

  // Stable hash key (combined with a model key for cache lookups).
  uint64_t Key() const;
};

// Generates the scheduling candidates for `job` in `cluster` (§6.1): GPU
// counts {N_G/2, N_G, 2N_G} clamped to the cluster's per-type capacity, every
// GPU type present, and the log(N) candidate stage counts per size.
std::vector<Cell> GenerateCells(const TrainingJob& job, const Cluster& cluster);

// As above, but GPU counts restricted to at most `max_gpus` (used when
// downscaling under resource pressure).
std::vector<Cell> GenerateCellsUpTo(const TrainingJob& job, const Cluster& cluster,
                                    int max_gpus);

}  // namespace crius

#endif  // SRC_CORE_CELL_H_
