// Single-device distributed profiling (§5.1, Fig. 10).
//
// For the computation side of a parallelism plan, Crius performs a
// "distributed-equivalent compilation" of one pipeline stage's operators under
// the chosen (dp, tp) and times them on a single GPU: one tensor shard of one
// microbatch is all that must run, because every replica executes the same
// partitions. The compiled executable also reports the stage's exact memory
// footprint, which Crius uses to drop OOM plans.
//
// The measured latency carries deterministic per-(stage, split, device)
// jitter, modeling CUPTI measurement scatter; memory is exact (it comes from
// compilation, not measurement). Profiling cost is charged in single-GPU
// seconds: compilation per operator plus a few timed repetitions.

#ifndef SRC_CORE_COMPUTE_PROFILE_H_
#define SRC_CORE_COMPUTE_PROFILE_H_

#include "src/parallel/perf_model.h"

namespace crius {

struct StageProfile {
  // Measured per-microbatch compute latency of one tensor shard.
  double t_compute = 0.0;
  // Exact per-GPU memory footprint from compilation.
  double mem_bytes = 0.0;
  bool fits = false;
  // Single-GPU seconds spent obtaining this profile.
  double gpu_seconds = 0.0;
};

class SingleDeviceProfiler {
 public:
  static constexpr double kCompileSecondsPerOp = 0.15;
  static constexpr int kProfileReps = 3;
  static constexpr double kMeasureJitter = 0.05;

  // `jitter` overrides the default measurement scatter; the noise-ablation
  // experiment sweeps it to show how estimate quality drives scheduling
  // quality (DESIGN.md §5).
  SingleDeviceProfiler(const PerfModel* model, uint64_t seed, double jitter = kMeasureJitter);

  // Profiles stage `range` of ctx's model under (dp, tp) within an
  // nstages-deep pipeline. Requires dp * tp == range.gpus.
  StageProfile ProfileStage(const JobContext& ctx, const StageRange& range, int dp, int tp,
                            int nstages) const;

 private:
  const PerfModel* model_;
  uint64_t seed_;
  double jitter_;
};

}  // namespace crius

#endif  // SRC_CORE_COMPUTE_PROFILE_H_
