#include "src/core/comm_profile.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/mathutil.h"
#include "src/util/rng.h"

namespace crius {

namespace {

// Sampled group sizes: powers of two up to the cluster's per-type capacity
// (capped -- rings beyond this are outside any Cell Crius generates).
constexpr int kMaxGroup = 512;

// Per-point measurement cost: warmup + kReps timed repetitions on all ranks.
constexpr int kReps = 5;
constexpr double kSetupPerPoint = 0.05;  // seconds

uint64_t PointKey(GpuType type, CollectiveKind kind, int n, int size_index) {
  uint64_t k = static_cast<uint64_t>(type);
  k = HashCombine(k, static_cast<uint64_t>(kind));
  k = HashCombine(k, static_cast<uint64_t>(n));
  k = HashCombine(k, static_cast<uint64_t>(size_index));
  return k;
}

}  // namespace

CommProfile::CommProfile(const Cluster& cluster, uint64_t seed, double jitter) {
  CRIUS_CHECK(jitter >= 0.0 && jitter < 1.0);
  const uint64_t stream = HashCombine(seed, HashString("comm_profile"));
  for (GpuType type : AllGpuTypes()) {
    if (!cluster.HasType(type)) {
      continue;
    }
    const GroupTopology topo = cluster.TopologyFor(type);
    const int type_cap = std::min(kMaxGroup, static_cast<int>(FloorPowerOfTwo(
                                                 std::max(1, cluster.TotalGpus(type)))));
    const int ti = static_cast<int>(type);

    for (int ki = 0; ki < kNumCollectiveKinds; ++ki) {
      const auto kind = static_cast<CollectiveKind>(ki);
      std::vector<int> groups;
      if (kind == CollectiveKind::kSendRecv) {
        // n == 1 encodes the intra-node path, n == 2 the cross-node path.
        groups = {1, 2};
      } else {
        for (int n = 2; n <= type_cap; n *= 2) {
          groups.push_back(n);
        }
      }
      for (int n : groups) {
        Curve curve;
        int size_index = 0;
        for (double bytes = kMinBytes; bytes <= kMaxBytes; bytes *= kGridStep) {
          double t = 0.0;
          if (kind == CollectiveKind::kSendRecv) {
            t = SendRecvTime(topo, bytes, /*cross_node=*/n == 2);
          } else {
            t = CollectiveTime(kind, topo, bytes, n);
          }
          CRIUS_CHECK(t > 0.0);
          t *= HashJitter(stream, PointKey(type, kind, n, size_index), jitter);
          curve.log_bytes.push_back(std::log(bytes));
          curve.log_time.push_back(std::log(t));
          const int ranks = (kind == CollectiveKind::kSendRecv) ? 2 : n;
          offline_gpu_seconds_ +=
              (kSetupPerPoint + static_cast<double>(kReps) * t) * static_cast<double>(ranks);
          ++size_index;
        }
        curves_[ti][ki][n] = std::move(curve);
      }
    }
  }
}

double CommProfile::Estimate(CollectiveKind kind, GpuType type, double bytes, int n) const {
  CRIUS_CHECK(kind != CollectiveKind::kSendRecv);
  CRIUS_CHECK(bytes >= 0.0);
  if (n <= 1 || bytes == 0.0) {
    return 0.0;
  }
  const auto& by_group = curves_[static_cast<int>(type)][static_cast<int>(kind)];
  CRIUS_CHECK_MSG(!by_group.empty(), "no offline profile for " << GpuName(type));
  auto it = by_group.find(n);
  if (it == by_group.end()) {
    // Clamp to the largest profiled group (only reachable for degenerate
    // configurations larger than any generated Cell).
    it = std::prev(by_group.end());
  }
  const Curve& c = it->second;
  const double clamped = std::clamp(bytes, kMinBytes, kMaxBytes);
  return std::exp(InterpolateLinear(c.log_bytes, c.log_time, std::log(clamped))) *
         (bytes > kMaxBytes ? bytes / kMaxBytes : 1.0);
}

double CommProfile::EstimateSendRecv(GpuType type, double bytes, bool cross_node) const {
  CRIUS_CHECK(bytes >= 0.0);
  if (bytes == 0.0) {
    return 0.0;
  }
  const auto& by_group =
      curves_[static_cast<int>(type)][static_cast<int>(CollectiveKind::kSendRecv)];
  CRIUS_CHECK_MSG(!by_group.empty(), "no offline profile for " << GpuName(type));
  const auto it = by_group.find(cross_node ? 2 : 1);
  CRIUS_CHECK(it != by_group.end());
  const Curve& c = it->second;
  const double clamped = std::clamp(bytes, kMinBytes, kMaxBytes);
  return std::exp(InterpolateLinear(c.log_bytes, c.log_time, std::log(clamped))) *
         (bytes > kMaxBytes ? bytes / kMaxBytes : 1.0);
}

}  // namespace crius
