// Sharded-mutex memoization cache for pure functions.
//
// The oracle's caches memoize pure computations (the value is a function of
// the key alone), so the only thread-safety requirement is that lookups and
// inserts do not race. Sharding the key space over independently locked
// std::maps lets concurrent misses on different shards compute in parallel
// while same-key callers serialize and compute exactly once. Returned
// references stay valid for the cache's lifetime (std::map nodes are stable),
// matching the single-threaded reference-returning API the callers rely on.
//
// The value is computed while the shard lock is held: this serializes misses
// that collide on a shard, but guarantees each key is computed once -- the
// right trade for expensive estimator/explorer work, and the reason hit/miss
// counters stay exact across thread counts.

#ifndef SRC_UTIL_SHARDED_CACHE_H_
#define SRC_UTIL_SHARDED_CACHE_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

namespace crius {

template <typename Key, typename Value, int kNumShards = 16>
class ShardedCache {
  static_assert(kNumShards > 0);

 public:
  // Looks up `key` (routed by `hash`); on a miss, stores compute() under the
  // shard lock. Returns (value reference, was_miss). compute() must be a pure
  // function of the key and must not re-enter this cache.
  template <typename Fn>
  std::pair<const Value&, bool> GetOrCompute(const Key& key, uint64_t hash, Fn&& compute) {
    Shard& shard = shards_[static_cast<size_t>(hash % kNumShards)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      return {it->second, false};
    }
    it = shard.map.emplace(key, compute()).first;
    return {it->second, true};
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<Key, Value> map;
  };
  std::array<Shard, kNumShards> shards_;
};

}  // namespace crius

#endif  // SRC_UTIL_SHARDED_CACHE_H_
