// Sharded-mutex memoization cache for pure functions.
//
// The oracle's caches memoize pure computations (the value is a function of
// the key alone), so the only thread-safety requirement is that lookups and
// inserts do not race. Sharding the key space over independently locked
// std::maps lets concurrent misses on different shards compute in parallel
// while same-key callers serialize and compute exactly once. Returned
// references stay valid for the cache's lifetime (std::map nodes are stable),
// matching the single-threaded reference-returning API the callers rely on.
//
// The value is computed while the shard lock is held: this serializes misses
// that collide on a shard, but guarantees each key is computed once -- the
// right trade for expensive estimator/explorer work, and the reason hit/miss
// counters stay exact across thread counts.
//
// Because compute() runs under the shard lock, nesting is constrained:
// compute() may call into a DIFFERENT cache (the tune cache's compute
// re-enters the estimate cache, see oracle.cc), but the resulting cache->cache
// edges must stay acyclic and consistently ordered process-wide, or two
// threads entering the cycle from opposite ends deadlock. Re-entering the
// SAME cache from its own compute() is always a bug (same-shard re-entry
// self-deadlocks) and is caught by a debug assertion below.

#ifndef SRC_UTIL_SHARDED_CACHE_H_
#define SRC_UTIL_SHARDED_CACHE_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace crius {

#ifndef NDEBUG
namespace sharded_cache_detail {
// Caches this thread is currently inside (shard lock held). Lets the debug
// build detect a GetOrCompute that re-enters a cache the thread already
// holds, i.e. a cyclic compute graph, before it manifests as a silent
// same-shard self-deadlock.
inline thread_local std::vector<const void*> t_entered_caches;

struct ReentryGuard {
  explicit ReentryGuard(const void* cache) {
    for (const void* c : t_entered_caches) {
      assert(c != cache &&
             "ShardedCache::GetOrCompute re-entered from its own compute() "
             "(cyclic cache dependency; same-shard re-entry would deadlock)");
    }
    t_entered_caches.push_back(cache);
  }
  ~ReentryGuard() { t_entered_caches.pop_back(); }
  ReentryGuard(const ReentryGuard&) = delete;
  ReentryGuard& operator=(const ReentryGuard&) = delete;
};
}  // namespace sharded_cache_detail
#endif  // NDEBUG

template <typename Key, typename Value, int kNumShards = 16>
class ShardedCache {
  static_assert(kNumShards > 0);

 public:
  // Looks up `key` (routed by `hash`); on a miss, stores compute() under the
  // shard lock. Returns (value reference, was_miss). compute() must be a pure
  // function of the key and must not re-enter this cache (asserted in debug
  // builds); calls into other caches must keep the cache graph acyclic.
  template <typename Fn>
  std::pair<const Value&, bool> GetOrCompute(const Key& key, uint64_t hash, Fn&& compute) {
#ifndef NDEBUG
    sharded_cache_detail::ReentryGuard reentry_guard(this);
#endif
    Shard& shard = shards_[static_cast<size_t>(hash % kNumShards)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      return {it->second, false};
    }
    it = shard.map.emplace(key, compute()).first;
    return {it->second, true};
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<Key, Value> map;
  };
  std::array<Shard, kNumShards> shards_;
};

}  // namespace crius

#endif  // SRC_UTIL_SHARDED_CACHE_H_
