#include "src/util/flags.h"

#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace crius {

FlagSet::FlagSet(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void FlagSet::String(const std::string& name, std::string* target, const std::string& help) {
  CRIUS_CHECK(target != nullptr);
  CRIUS_CHECK_MSG(Find(name) == nullptr, "duplicate flag --" << name);
  flags_.push_back(Flag{name, Kind::kString, target, help, *target});
}

void FlagSet::Int(const std::string& name, int64_t* target, const std::string& help) {
  CRIUS_CHECK(target != nullptr);
  CRIUS_CHECK_MSG(Find(name) == nullptr, "duplicate flag --" << name);
  flags_.push_back(Flag{name, Kind::kInt, target, help, std::to_string(*target)});
}

void FlagSet::Double(const std::string& name, double* target, const std::string& help) {
  CRIUS_CHECK(target != nullptr);
  CRIUS_CHECK_MSG(Find(name) == nullptr, "duplicate flag --" << name);
  std::ostringstream oss;
  oss << *target;
  flags_.push_back(Flag{name, Kind::kDouble, target, help, oss.str()});
}

void FlagSet::Bool(const std::string& name, bool* target, const std::string& help) {
  CRIUS_CHECK(target != nullptr);
  CRIUS_CHECK_MSG(Find(name) == nullptr, "duplicate flag --" << name);
  flags_.push_back(Flag{name, Kind::kBool, target, help, *target ? "true" : "false"});
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

bool FlagSet::Assign(Flag& flag, const std::string& value) {
  try {
    switch (flag.kind) {
      case Kind::kString:
        *static_cast<std::string*>(flag.target) = value;
        return true;
      case Kind::kInt: {
        size_t pos = 0;
        const int64_t v = std::stoll(value, &pos);
        if (pos != value.size()) {
          return false;
        }
        *static_cast<int64_t*>(flag.target) = v;
        return true;
      }
      case Kind::kDouble: {
        size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size()) {
          return false;
        }
        *static_cast<double*>(flag.target) = v;
        return true;
      }
      case Kind::kBool:
        if (value == "true" || value == "1") {
          *static_cast<bool*>(flag.target) = true;
          return true;
        }
        if (value == "false" || value == "0") {
          *static_cast<bool*>(flag.target) = false;
          return true;
        }
        return false;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool FlagSet::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Flag* flag = Find(arg);
    if (flag == nullptr) {
      std::fprintf(stderr, "%s: unknown flag --%s\n%s", program_.c_str(), arg.c_str(),
                   Usage().c_str());
      return false;
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        value = "true";  // bare --flag enables
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: flag --%s needs a value\n", program_.c_str(), arg.c_str());
        return false;
      }
    }
    if (!Assign(*flag, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for --%s\n", program_.c_str(), value.c_str(),
                   arg.c_str());
      return false;
    }
  }
  return true;
}

bool FlagSet::ParseKnown(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      continue;  // not ours; another parser's positional
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Flag* flag = Find(arg);
    if (flag == nullptr) {
      // Unknown flag: leave it (and any value token it may own) for the other
      // parser. Never consume the next token — "--benchmark_filter foo" must
      // stay intact.
      continue;
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        value = "true";  // bare --flag enables
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: flag --%s needs a value; keeping default %s\n",
                     program_.c_str(), arg.c_str(), flag->default_value.c_str());
        continue;
      }
    }
    if (!Assign(*flag, value)) {
      std::fprintf(stderr, "%s: bad value '%s' for --%s; keeping default %s\n",
                   program_.c_str(), value.c_str(), arg.c_str(),
                   flag->default_value.c_str());
    }
  }
  return true;
}

std::string FlagSet::Usage() const {
  std::ostringstream oss;
  oss << program_ << " -- " << description_ << "\n\nFlags:\n";
  for (const Flag& flag : flags_) {
    oss << "  --" << flag.name;
    oss << "  (default: " << flag.default_value << ")\n";
    oss << "      " << flag.help << "\n";
  }
  return oss.str();
}

}  // namespace crius
