// Shared CSV plumbing: one splitter/escaper and one set of field parsers for
// every CSV format the repository reads or writes (workload traces, failure
// traces, per-job result exports, and the serve session log).
//
// trace_io and fault_trace_io used to hand-roll identical SplitCsv /
// ParseDouble helpers; this header is the single copy. The splitter and
// escaper speak RFC-4180-style quoting (fields containing commas, quotes, or
// newlines are double-quoted with embedded quotes doubled), which the session
// log needs for its free-form meta field; the numeric-only schemas emit the
// same bytes as before because unremarkable fields are never quoted.
//
// Parse failures abort with a "<context> line N: ..." diagnostic via
// CRIUS_CHECK: a corrupt operator-supplied CSV is worth failing loudly on.

#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crius {
namespace csv {

// Splits one CSV line into fields. Double-quoted fields may contain commas
// and doubled quotes; '\r' is stripped outside quotes (Windows line ends).
std::vector<std::string> SplitLine(const std::string& line);

// Returns `field` ready for emission: verbatim unless it contains a comma,
// quote, or newline, in which case it is double-quoted with internal quotes
// doubled.
std::string EscapeField(const std::string& field);

// Writes one comma-joined row (each field escaped) plus a trailing newline.
void WriteRow(std::ostream& out, const std::vector<std::string>& fields);

// Strict numeric parsers. `what` names the column and `context` the file
// format; both appear in the abort diagnostic, e.g.
//   "trace CSV line 7: bad params_billion 'abc'".
double ParseDouble(const std::string& s, const char* what, int line_no, const char* context);
int64_t ParseInt(const std::string& s, const char* what, int line_no, const char* context);

// Line-oriented CSV reader: skips blank lines, tracks line numbers, and
// validates the header row (the first non-blank line must start with
// `header_prefix`; aborts with "<context> missing header row" otherwise).
class Reader {
 public:
  Reader(std::istream& in, std::string context, std::string header_prefix);

  // Advances to the next data row; false at end of input.
  bool Next();

  // Current row accessors (valid after Next() returned true).
  const std::vector<std::string>& fields() const { return fields_; }
  int line_no() const { return line_no_; }

  // Aborts unless the current row has exactly `n` fields.
  void ExpectFields(size_t n) const;

  const std::string& Field(size_t i) const;
  double Double(size_t i, const char* what) const;
  int64_t Int(size_t i, const char* what) const;

 private:
  std::istream& in_;
  std::string context_;
  std::string header_prefix_;
  std::vector<std::string> fields_;
  int line_no_ = 0;
  bool header_seen_ = false;
};

}  // namespace csv
}  // namespace crius

#endif  // SRC_UTIL_CSV_H_
