#include "src/util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace crius {

Json Json::Null() { return Json(); }

Json Json::Bool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.b_ = v;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  return j;
}

Json Json::Str(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::Set(const std::string& key, Json value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return fields_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : fields_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

double Json::NumberOr(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->num_ : fallback;
}

std::string Json::StringOr(const std::string& key, const std::string& fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_string() ? v->str_ : fallback;
}

bool Json::BoolOr(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_bool() ? v->b_ : fallback;
}

void Json::Push(Json value) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(value));
}

std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";  // JSON has no Inf/NaN; exporters clamp rather than emit invalid text
  }
  if (v == 0.0) {
    return "0";
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string Json::EscapeString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::SerializeTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad = pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += b_ ? "true" : "false";
      break;
    case Kind::kNumber:
      *out += FormatJsonNumber(num_);
      break;
    case Kind::kString:
      *out += EscapeString(str_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      *out += nl;
      for (size_t i = 0; i < items_.size(); ++i) {
        *out += pad;
        items_[i].SerializeTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) {
          *out += ",";
        }
        *out += nl;
      }
      *out += close_pad;
      *out += "]";
      break;
    }
    case Kind::kObject: {
      if (fields_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      *out += nl;
      for (size_t i = 0; i < fields_.size(); ++i) {
        *out += pad;
        *out += EscapeString(fields_[i].first);
        *out += colon;
        fields_[i].second.SerializeTo(out, indent, depth + 1);
        if (i + 1 < fields_.size()) {
          *out += ",";
        }
        *out += nl;
      }
      *out += close_pad;
      *out += "}";
      break;
    }
  }
}

std::string Json::Serialize(int indent) const {
  std::string out;
  SerializeTo(&out, indent, 0);
  return out;
}

namespace {

struct JsonParser {
  const std::string& s;
  size_t pos = 0;
  std::string* error;

  bool Fail(const std::string& message) {
    if (error != nullptr) {
      *error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }

  bool ParseString(std::string* out) {
    if (pos >= s.size() || s[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= s.size()) {
        return Fail("dangling escape");
      }
      const char e = s[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos + 4 > s.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          if (code > 0x7f) {
            return Fail("\\u escapes beyond ASCII are not supported");
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Fail(std::string("unsupported escape '\\") + e + "'");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > 64) {
      return Fail("nesting too deep");
    }
    SkipSpace();
    if (pos >= s.size()) {
      return Fail("expected value");
    }
    const char c = s[pos];
    if (c == '"') {
      std::string str;
      if (!ParseString(&str)) {
        return false;
      }
      *out = Json::Str(std::move(str));
      return true;
    }
    if (c == '{') {
      ++pos;
      *out = Json::Object();
      SkipSpace();
      if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipSpace();
        if (pos >= s.size() || s[pos] != ':') {
          return Fail("expected ':'");
        }
        ++pos;
        Json value;
        if (!ParseValue(&value, depth + 1)) {
          return false;
        }
        out->Set(key, std::move(value));
        SkipSpace();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < s.size() && s[pos] == '}') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      *out = Json::Array();
      SkipSpace();
      if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json value;
        if (!ParseValue(&value, depth + 1)) {
          return false;
        }
        out->Push(std::move(value));
        SkipSpace();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < s.size() && s[pos] == ']') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == 't' || c == 'f' || c == 'n') {
      const std::string word = c == 't' ? "true" : (c == 'f' ? "false" : "null");
      if (s.compare(pos, word.size(), word) != 0) {
        return Fail("bad literal");
      }
      pos += word.size();
      *out = c == 'n' ? Json::Null() : Json::Bool(c == 't');
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* begin = s.c_str() + pos;
      char* end = nullptr;
      const double v = std::strtod(begin, &end);
      if (end == begin) {
        return Fail("bad number");
      }
      pos += static_cast<size_t>(end - begin);
      *out = Json::Number(v);
      return true;
    }
    return Fail(std::string("unexpected character '") + c + "'");
  }
};

}  // namespace

bool Json::Parse(const std::string& text, Json* out, std::string* error) {
  JsonParser parser{text, 0, error};
  if (!parser.ParseValue(out, 0)) {
    return false;
  }
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    return parser.Fail("trailing garbage");
  }
  return true;
}

}  // namespace crius
