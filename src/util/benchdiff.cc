#include "src/util/benchdiff.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/json.h"
#include "src/util/table.h"

namespace crius {

namespace {

constexpr int kBenchSchemaVersion = 1;

const char* StatusName(BenchDiffEntry::Status status) {
  switch (status) {
    case BenchDiffEntry::Status::kOk:
      return "ok";
    case BenchDiffEntry::Status::kImproved:
      return "improved";
    case BenchDiffEntry::Status::kRegressed:
      return "REGRESSED";
    case BenchDiffEntry::Status::kMissingBaseline:
      return "new";
    case BenchDiffEntry::Status::kMissingFresh:
      return "MISSING";
    case BenchDiffEntry::Status::kNotComparable:
      return "n/a";
  }
  return "?";
}

}  // namespace

void BenchReport::AddMetric(const std::string& name, double value, const std::string& unit,
                            const std::string& better, double threshold) {
  BenchMetricValue metric;
  metric.value = value;
  metric.unit = unit;
  metric.better = better;
  metric.threshold = threshold;
  metrics[name] = std::move(metric);
}

std::string BenchReport::ToJson() const {
  Json root = Json::Object();
  root.Set("bench", Json::Str(bench));
  root.Set("schema", Json::Number(kBenchSchemaVersion));
  Json meta_obj = Json::Object();
  for (const auto& [key, value] : meta) {
    meta_obj.Set(key, Json::Str(value));
  }
  root.Set("meta", std::move(meta_obj));
  Json metrics_obj = Json::Object();
  for (const auto& [name, metric] : metrics) {
    Json entry = Json::Object();
    entry.Set("value", Json::Number(metric.value));
    entry.Set("unit", Json::Str(metric.unit));
    entry.Set("better", Json::Str(metric.better));
    if (metric.threshold >= 0.0) {
      entry.Set("threshold", Json::Number(metric.threshold));
    }
    metrics_obj.Set(name, std::move(entry));
  }
  root.Set("metrics", std::move(metrics_obj));
  return root.Serialize(2);
}

bool BenchReport::WriteFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << ToJson() << "\n";
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool BenchReport::Parse(const std::string& text, BenchReport* out, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  Json root;
  if (!Json::Parse(text, &root, error)) {
    return false;
  }
  if (!root.is_object()) {
    *error = "bench report must be a JSON object";
    return false;
  }
  const int schema = static_cast<int>(root.NumberOr("schema", 0.0));
  if (schema != kBenchSchemaVersion) {
    *error = "unsupported bench report schema " + std::to_string(schema);
    return false;
  }
  out->bench = root.StringOr("bench", "");
  out->meta.clear();
  if (const Json* meta = root.Find("meta"); meta != nullptr && meta->is_object()) {
    for (const auto& [key, value] : meta->fields()) {
      if (value.is_string()) {
        out->meta[key] = value.str();
      }
    }
  }
  out->metrics.clear();
  const Json* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    *error = "bench report missing 'metrics' object";
    return false;
  }
  for (const auto& [name, entry] : metrics->fields()) {
    if (!entry.is_object()) {
      *error = "metric '" + name + "' must be an object";
      return false;
    }
    BenchMetricValue metric;
    metric.value = entry.NumberOr("value", 0.0);
    metric.unit = entry.StringOr("unit", "");
    metric.better = entry.StringOr("better", "none");
    if (metric.better != "lower" && metric.better != "higher" && metric.better != "none") {
      *error = "metric '" + name + "' has bad better '" + metric.better + "'";
      return false;
    }
    metric.threshold = entry.NumberOr("threshold", -1.0);
    out->metrics[name] = std::move(metric);
  }
  return true;
}

bool BenchReport::ReadFile(const std::string& path, BenchReport* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), out, error);
}

BenchDiffResult CompareBenchReports(const BenchReport& baseline, const BenchReport& fresh,
                                    double default_threshold) {
  BenchDiffResult result;
  for (const auto& [name, base_metric] : baseline.metrics) {
    BenchDiffEntry entry;
    entry.name = name;
    entry.baseline = base_metric.value;
    entry.better = base_metric.better;
    entry.threshold =
        base_metric.threshold >= 0.0 ? base_metric.threshold : default_threshold;
    const auto it = fresh.metrics.find(name);
    if (it == fresh.metrics.end()) {
      entry.status = BenchDiffEntry::Status::kMissingFresh;
      result.regressed = true;
      result.entries.push_back(std::move(entry));
      continue;
    }
    entry.fresh = it->second.value;
    if (base_metric.better == "none" || base_metric.value <= 0.0) {
      entry.status = BenchDiffEntry::Status::kNotComparable;
      result.entries.push_back(std::move(entry));
      continue;
    }
    entry.ratio = entry.fresh / entry.baseline;
    const bool lower_is_better = base_metric.better == "lower";
    const double bad_bound = lower_is_better ? 1.0 + entry.threshold : 1.0 - entry.threshold;
    const double good_bound = lower_is_better ? 1.0 - entry.threshold : 1.0 + entry.threshold;
    if (lower_is_better ? entry.ratio > bad_bound : entry.ratio < bad_bound) {
      entry.status = BenchDiffEntry::Status::kRegressed;
      result.regressed = true;
    } else if (lower_is_better ? entry.ratio < good_bound : entry.ratio > good_bound) {
      entry.status = BenchDiffEntry::Status::kImproved;
    } else {
      entry.status = BenchDiffEntry::Status::kOk;
    }
    result.entries.push_back(std::move(entry));
  }
  for (const auto& [name, fresh_metric] : fresh.metrics) {
    if (baseline.metrics.count(name) != 0) {
      continue;
    }
    BenchDiffEntry entry;
    entry.name = name;
    entry.fresh = fresh_metric.value;
    entry.better = fresh_metric.better;
    entry.status = BenchDiffEntry::Status::kMissingBaseline;
    result.entries.push_back(std::move(entry));
  }
  return result;
}

BenchReport UpdateBaseline(const BenchReport& baseline, const BenchReport& fresh) {
  BenchReport updated = fresh;
  for (auto& [name, metric] : updated.metrics) {
    const auto it = baseline.metrics.find(name);
    if (it != baseline.metrics.end() && it->second.threshold >= 0.0) {
      metric.threshold = it->second.threshold;
    }
  }
  return updated;
}

std::string BenchDiffResult::Render() const {
  Table table("Bench diff");
  table.SetHeader({"metric", "baseline", "fresh", "ratio", "tolerance", "status"});
  for (const BenchDiffEntry& entry : entries) {
    const bool comparable = entry.status == BenchDiffEntry::Status::kOk ||
                            entry.status == BenchDiffEntry::Status::kImproved ||
                            entry.status == BenchDiffEntry::Status::kRegressed;
    table.AddRow({entry.name, Table::Fmt(entry.baseline, 4), Table::Fmt(entry.fresh, 4),
                  comparable ? Table::FmtFactor(entry.ratio) : "-",
                  comparable ? Table::Fmt(entry.threshold, 2) : "-",
                  StatusName(entry.status)});
  }
  std::string out = table.Render();
  out += regressed ? "VERDICT: REGRESSED\n" : "VERDICT: ok\n";
  return out;
}

}  // namespace crius
