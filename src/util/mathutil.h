// Integer/bit helpers shared by the parallelism and scheduling code.

#ifndef SRC_UTIL_MATHUTIL_H_
#define SRC_UTIL_MATHUTIL_H_

#include <cstdint>
#include <vector>

namespace crius {

// True if x is a power of two (x > 0).
bool IsPowerOfTwo(int64_t x);

// Largest power of two <= x. Requires x >= 1.
int64_t FloorPowerOfTwo(int64_t x);

// Smallest power of two >= x. Requires x >= 1.
int64_t CeilPowerOfTwo(int64_t x);

// floor(log2(x)). Requires x >= 1.
int Log2Floor(int64_t x);

// Ceiling division for non-negative integers. Requires b > 0.
int64_t CeilDiv(int64_t a, int64_t b);

// All (d, t) factorizations of n with d and t powers of two and d * t == n.
// Requires n to be a power of two. Ordered by increasing t.
struct PowerOfTwoSplit {
  int64_t d;
  int64_t t;
};
std::vector<PowerOfTwoSplit> PowerOfTwoSplits(int64_t n);

// All powers of two in [1, n] in increasing order. Requires n >= 1.
std::vector<int64_t> PowersOfTwoUpTo(int64_t n);

// Half-hybrid split points for a power-of-two group of n GPUs (Crius §5.2):
// 2^floor(log2(n)/2) and 2^ceil(log2(n)/2). Equal when log2(n) is even.
int HalfHybridFloor(int n);
int HalfHybridCeil(int n);

// Linear interpolation of y at x over the sorted sample points (xs, ys);
// clamps outside the range by extrapolating the boundary segment slope.
// Requires xs strictly increasing with at least two points.
double InterpolateLinear(const std::vector<double>& xs, const std::vector<double>& ys, double x);

}  // namespace crius

#endif  // SRC_UTIL_MATHUTIL_H_
