#include "src/util/shutdown.h"

#include <atomic>
#include <csignal>

namespace crius {

namespace {

std::atomic<int> g_shutdown_signal{0};

void HandleSignal(int signal_number) {
  // Async-signal-safe: a lock-free atomic store and nothing else.
  g_shutdown_signal.store(signal_number, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownHandler() {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
}

bool ShutdownRequested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownSignal() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void RequestShutdown(int signal_number) {
  g_shutdown_signal.store(signal_number, std::memory_order_relaxed);
}

void ResetShutdownForTest() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace crius
