#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace crius {

double Mean(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return s / static_cast<double>(v.size());
}

double GeoMean(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double x : v) {
    CRIUS_CHECK_MSG(x > 0.0, "GeoMean requires positive entries");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) {
    return 0.0;
  }
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Percentile(std::vector<double> v, double p) {
  CRIUS_CHECK(!v.empty());
  CRIUS_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  if (v.size() == 1) {
    return v[0];
  }
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double Median(std::vector<double> v) {
  return Percentile(std::move(v), 50.0);
}

double Max(const std::vector<double>& v) {
  CRIUS_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double Min(const std::vector<double>& v) {
  CRIUS_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double Sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return s;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

}  // namespace crius
