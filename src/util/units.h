// Unit constants. Crius uses SI base units internally:
//   time    -- seconds (double)
//   bytes   -- bytes (double; values routinely exceed 2^53-safe int ranges only
//              in aggregates, which stay well under the double mantissa)
//   compute -- FLOPs (double)
//   bw      -- bytes / second

#ifndef SRC_UTIL_UNITS_H_
#define SRC_UTIL_UNITS_H_

namespace crius {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;

constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

constexpr double kTeraFlops = 1e12;
constexpr double kGigaFlops = 1e9;

constexpr double kGBps = 1e9;          // bytes/second
constexpr double kGbps = 1e9 / 8.0;    // bits/second expressed as bytes/second

constexpr double kMicrosecond = 1e-6;
constexpr double kMillisecond = 1e-3;
constexpr double kSecond = 1.0;
constexpr double kMinute = 60.0;
constexpr double kHour = 3600.0;
constexpr double kDay = 24.0 * kHour;

constexpr double kBillion = 1e9;

}  // namespace crius

#endif  // SRC_UTIL_UNITS_H_
