#include "src/util/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace crius {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::SetHeader(std::vector<std::string> header) {
  CRIUS_CHECK(rows_.empty());
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  CRIUS_CHECK_MSG(row.size() == header_.size(),
                  "row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::FmtInt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string Table::FmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::FmtFactor(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, ratio);
  return buf;
}

std::string Table::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream oss;
    oss << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      oss << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        oss << ' ';
      }
      oss << " |";
    }
    oss << "\n";
    return oss.str();
  };

  std::ostringstream oss;
  size_t total = 1;
  for (size_t w : widths) {
    total += w + 3;
  }
  oss << "\n== " << title_ << " ==\n";
  oss << render_row(header_);
  oss << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    oss << render_row(row);
  }
  return oss.str();
}

void Table::Print() const {
  const std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace crius
