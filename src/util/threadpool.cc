#include "src/util/threadpool.h"

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/trace.h"

namespace crius {

namespace {

// True while the current thread is executing a pool task; nested ParallelFor
// calls detect this and run inline instead of deadlocking on batch_mu_.
thread_local bool t_in_pool_task = false;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;  // lazily created, default 1 thread

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  deques_.reserve(static_cast<size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  // Worker w services deques_[w + 1]; the ParallelFor caller services
  // deques_[0].
  for (int w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

bool ThreadPool::PopIndex(int worker, size_t* index, bool* stolen) {
  // Own deque first, front-first (preserves the round-robin deal order).
  {
    Deque& own = *deques_[static_cast<size_t>(worker)];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.indices.empty()) {
      *index = own.indices.front();
      own.indices.pop_front();
      *stolen = false;
      return true;
    }
  }
  // Steal from siblings, back-first (classic work stealing: take the work the
  // owner would reach last).
  for (int off = 1; off < threads_; ++off) {
    Deque& victim = *deques_[static_cast<size_t>((worker + off) % threads_)];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.indices.empty()) {
      *index = victim.indices.back();
      victim.indices.pop_back();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::RunOne(size_t index) {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  (*fn_)(index);
  t_in_pool_task = was_in_task;
  remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

void ThreadPool::WorkerLoop(int worker) {
  const int my_deque = worker + 1;
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
    }
    size_t index = 0;
    bool stolen = false;
    while (PopIndex(my_deque, &index, &stolen)) {
      if (stolen) {
        CRIUS_COUNTER_INC("threadpool.tasks_stolen");
      }
      RunOne(index);
    }
    if (remaining_.load(std::memory_order_acquire) == 0) {
      // Synchronize with the caller's predicate check so the notify cannot
      // slip between its check and its wait (missed wake-up).
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // Sequential fast path: a 1-thread pool, a single task, or a nested call
  // from inside a pool task all run inline on the calling thread.
  if (threads_ == 1 || n == 1 || t_in_pool_task) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  CRIUS_TRACE_SPAN_ARGS("threadpool.parallel_for",
                        "{\"tasks\": " + std::to_string(n) +
                            ", \"threads\": " + std::to_string(threads_) + "}");
  CRIUS_COUNTER_INC("threadpool.parallel_sections");
  CRIUS_COUNTER_ADD("threadpool.tasks_executed", static_cast<int64_t>(n));

  // Publish the batch state BEFORE any index becomes poppable: a worker that
  // finished the previous batch can still be scanning the deques, and if it
  // pops a fresh index it must observe the new fn_/remaining_ (the deque mutex
  // orders these writes before its pop). Publishing after the pushes would let
  // such a stale worker call the old, nulled fn_ or underflow remaining_.
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    remaining_.store(n, std::memory_order_release);
  }

  // Deal indices round-robin so every participant starts with a contiguous
  // share and stealing only happens on imbalance.
  for (size_t i = 0; i < n; ++i) {
    Deque& d = *deques_[i % static_cast<size_t>(threads_)];
    std::lock_guard<std::mutex> lock(d.mu);
    d.indices.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller works its own share (deque 0), then steals.
  size_t index = 0;
  bool stolen = false;
  while (PopIndex(0, &index, &stolen)) {
    if (stolen) {
      CRIUS_COUNTER_INC("threadpool.tasks_stolen");
    }
    RunOne(index);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return remaining_.load(std::memory_order_acquire) == 0; });
    fn_ = nullptr;
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(1);
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool && g_global_pool->threads() == (threads < 1 ? 1 : threads)) {
    return;
  }
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

int ThreadPool::GlobalThreads() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  return g_global_pool ? g_global_pool->threads() : 1;
}

}  // namespace crius
