#include "src/util/mathutil.h"

#include <algorithm>

#include "src/util/check.h"

namespace crius {

bool IsPowerOfTwo(int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

int64_t FloorPowerOfTwo(int64_t x) {
  CRIUS_CHECK(x >= 1);
  int64_t p = 1;
  while (p * 2 <= x) {
    p *= 2;
  }
  return p;
}

int64_t CeilPowerOfTwo(int64_t x) {
  CRIUS_CHECK(x >= 1);
  int64_t p = 1;
  while (p < x) {
    p *= 2;
  }
  return p;
}

int Log2Floor(int64_t x) {
  CRIUS_CHECK(x >= 1);
  int l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

int64_t CeilDiv(int64_t a, int64_t b) {
  CRIUS_CHECK(b > 0);
  CRIUS_CHECK(a >= 0);
  return (a + b - 1) / b;
}

std::vector<PowerOfTwoSplit> PowerOfTwoSplits(int64_t n) {
  CRIUS_CHECK_MSG(IsPowerOfTwo(n), "n must be a power of two, got " << n);
  std::vector<PowerOfTwoSplit> out;
  for (int64_t t = 1; t <= n; t *= 2) {
    out.push_back(PowerOfTwoSplit{n / t, t});
  }
  return out;
}

std::vector<int64_t> PowersOfTwoUpTo(int64_t n) {
  CRIUS_CHECK(n >= 1);
  std::vector<int64_t> out;
  for (int64_t p = 1; p <= n; p *= 2) {
    out.push_back(p);
  }
  return out;
}

int HalfHybridFloor(int n) {
  CRIUS_CHECK(IsPowerOfTwo(n));
  return 1 << (Log2Floor(n) / 2);
}

int HalfHybridCeil(int n) {
  CRIUS_CHECK(IsPowerOfTwo(n));
  return 1 << ((Log2Floor(n) + 1) / 2);
}

double InterpolateLinear(const std::vector<double>& xs, const std::vector<double>& ys, double x) {
  CRIUS_CHECK(xs.size() == ys.size());
  CRIUS_CHECK(xs.size() >= 2);
  // Find the segment [i, i+1] whose x-range covers `x`, clamping to the first
  // or last segment outside the sampled range.
  size_t i = 0;
  if (x >= xs.back()) {
    i = xs.size() - 2;
  } else if (x > xs.front()) {
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    i = static_cast<size_t>(it - xs.begin()) - 1;
    i = std::min(i, xs.size() - 2);
  }
  const double x0 = xs[i];
  const double x1 = xs[i + 1];
  CRIUS_CHECK_MSG(x1 > x0, "interpolation xs must be strictly increasing");
  const double f = (x - x0) / (x1 - x0);
  return ys[i] + (ys[i + 1] - ys[i]) * f;
}

}  // namespace crius
