// Generation-stamped memo on top of the ShardedCache pattern.
//
// GenStampedMemo caches values that are pure functions of (key, generation):
// each entry carries the MemoStamp it was computed under, and Find only hits
// when the caller's current stamp matches the entry's. When the generation
// advances, a maintainer either evicts the entries the change dirtied and
// restamps the clean survivors (incremental path) or clears outright (full
// recompute) -- stale entries are never served.
//
// Like ShardedCache, the key space is sharded over independently locked
// std::maps so concurrent readers on different shards proceed in parallel,
// and returned references stay valid until the entry is erased or the memo is
// cleared (std::map nodes are stable). Unlike ShardedCache, values are
// computed OUTSIDE the lock by the caller and inserted with PutIfAbsent
// (first-wins on a same-stamp race: both racers computed the identical pure
// value, and first-wins keeps previously handed-out references immutable).
//
// Maintenance calls (Restamp/Erase/EvictIf/Clear) must not run concurrently
// with Find/PutIfAbsent on the same entries' lifetimes being relied upon:
// the intended use is a single-threaded round-start sync followed by a
// read-mostly parallel phase, which is how CriusScheduler drives it.

#ifndef SRC_UTIL_GEN_MEMO_H_
#define SRC_UTIL_GEN_MEMO_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

namespace crius {

// The generation a memo entry was computed under. For scheduler state this is
// (Cluster::identity(), Cluster::health_epoch()): identity catches a swap to
// a different cluster object whose epoch coincidentally matches, the epoch
// catches health mutations of the same cluster.
struct MemoStamp {
  uint64_t identity = 0;
  uint64_t epoch = 0;

  friend bool operator==(const MemoStamp& a, const MemoStamp& b) {
    return a.identity == b.identity && a.epoch == b.epoch;
  }
  friend bool operator!=(const MemoStamp& a, const MemoStamp& b) { return !(a == b); }
};

template <typename Key, typename Value, int kNumShards = 16>
class GenStampedMemo {
  static_assert(kNumShards > 0);

 public:
  // Returns the entry for `key` iff it exists AND carries `stamp`; nullptr
  // otherwise. The reference stays valid until the entry is erased.
  const Value* Find(const Key& key, uint64_t hash, const MemoStamp& stamp) const {
    const Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second.stamp != stamp) {
      return nullptr;
    }
    return &it->second.value;
  }

  // Inserts (key, stamp, value). If an entry with the same stamp already
  // exists the insert is dropped and the existing value returned (first
  // wins); an entry with a stale stamp is overwritten in place. Callers
  // compute `value` outside any memo lock.
  const Value& PutIfAbsent(const Key& key, uint64_t hash, const MemoStamp& stamp, Value&& value) {
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      it = shard.map.emplace(key, Entry{stamp, std::move(value)}).first;
    } else if (it->second.stamp != stamp) {
      it->second.stamp = stamp;
      it->second.value = std::move(value);
    }
    return it->second.value;
  }

  // Moves an existing entry (whatever its current stamp) to `stamp` without
  // recomputing its value. Returns false if `key` is absent.
  bool Restamp(const Key& key, uint64_t hash, const MemoStamp& stamp) {
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      return false;
    }
    it->second.stamp = stamp;
    return true;
  }

  bool Contains(const Key& key, uint64_t hash) const {
    const Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.find(key) != shard.map.end();
  }

  // Erases `key` if present; returns whether an entry was removed.
  bool Erase(const Key& key, uint64_t hash) {
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.erase(key) > 0;
  }

  // Erases every entry for which pred(key, stamp) is true; returns the number
  // of entries removed. Shards are visited in index order, keys in map order,
  // so the eviction sequence is deterministic.
  template <typename Pred>
  size_t EvictIf(Pred&& pred) {
    size_t evicted = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (pred(it->first, it->second.stamp)) {
          it = shard.map.erase(it);
          ++evicted;
        } else {
          ++it;
        }
      }
    }
    return evicted;
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

  bool empty() const { return size() == 0; }

 private:
  struct Entry {
    MemoStamp stamp;
    Value value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<Key, Entry> map;
  };

  Shard& ShardFor(uint64_t hash) { return shards_[static_cast<size_t>(hash % kNumShards)]; }
  const Shard& ShardFor(uint64_t hash) const {
    return shards_[static_cast<size_t>(hash % kNumShards)];
  }

  std::array<Shard, kNumShards> shards_;
};

}  // namespace crius

#endif  // SRC_UTIL_GEN_MEMO_H_
