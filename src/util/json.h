// Minimal generic JSON tree: parse, build, serialize.
//
// The serve protocol deliberately speaks a *flat* JSON dialect
// (src/serve/protocol.h); this is the general-purpose counterpart for the
// telemetry pipeline, where nesting is essential: metrics snapshots
// (src/util/metrics_export.h), bench perf reports (bench/bench_util.h), and
// the crius_benchdiff regression gate all read and write this tree.
//
// Properties the telemetry consumers rely on:
//   * Deterministic serialization: objects keep insertion order (builders
//     insert sorted keys where determinism matters), numbers render via
//     std::to_chars shortest round-trip form, so parse(serialize(x)) == x
//     and golden tests can string-compare output.
//   * No aborts on malformed input: Parse returns false with a message and
//     byte offset; operator-supplied files are rejected, never crashed on.
//   * Small surface: object/array/string/number/bool/null only -- no
//     comments, no trailing commas, \uXXXX escapes limited to ASCII.

#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace crius {

class Json {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  // --- Builders --------------------------------------------------------------
  static Json Null();
  static Json Bool(bool v);
  static Json Number(double v);
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // --- Object access (no-op / empty defaults on kind mismatch) ---------------
  // Adds or replaces `key`; keeps first-insertion position on replace.
  Json& Set(const std::string& key, Json value);
  const Json* Find(const std::string& key) const;
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key, const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
  const std::vector<std::pair<std::string, Json>>& fields() const { return fields_; }

  // --- Array access ----------------------------------------------------------
  void Push(Json value);
  const std::vector<Json>& items() const { return items_; }

  // --- Leaf values -----------------------------------------------------------
  double number() const { return num_; }
  bool boolean() const { return b_; }
  const std::string& str() const { return str_; }

  // Compact single-line serialization ("indent < 0"), or pretty-printed with
  // `indent` spaces per level. Deterministic given the tree.
  std::string Serialize(int indent = -1) const;

  // Parses one complete JSON value (trailing garbage is an error). Returns
  // false with a message + offset in *error on malformed input.
  static bool Parse(const std::string& text, Json* out, std::string* error);

  // JSON string escaping of `s` (quotes included), shared with exporters.
  static std::string EscapeString(const std::string& s);

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool b_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

// Shortest round-trip decimal rendering of `v` (std::to_chars); "0" for -0.
std::string FormatJsonNumber(double v);

}  // namespace crius

#endif  // SRC_UTIL_JSON_H_
