// Process-wide registry of named counters, gauges, and streaming histograms.
//
// Hot paths record domain telemetry through the macros:
//
//   CRIUS_COUNTER_INC("sched.cells_considered");
//   CRIUS_COUNTER_ADD("sim.restarts", 2);
//   CRIUS_GAUGE_SET("serve.queue_depth", depth);
//   CRIUS_HISTOGRAM_RECORD("explorer.plans_enumerated", n);
//   CRIUS_SCOPED_TIMER_MS("sched.round_ms");   // wall time of the scope
//
// Every metric kind also takes an optional label set -- sorted key/value
// pairs such as {"phase","drain"} -- resolved through the registry's
// Get{Counter,Gauge,Histogram}(name, labels) overloads. Labels canonicalize
// to `name{k1="v1",k2="v2"}` (keys sorted, so insertion order never matters)
// and the exporters (src/util/metrics_export.h) carry them through to JSON
// and Prometheus output.
//
// Counters are relaxed atomic adds; gauges are last-write-wins doubles;
// histograms are log-bucketed streaming accumulators (count/sum/min/max plus
// interpolated percentiles) built on RunningStats from src/util/stats.h.
// Each macro resolves its registry entry once (function-local static), so
// steady-state cost is one atomic add or one short mutex-guarded bucket
// increment. DumpTable() renders everything through src/util/table.h;
// Reset() zeroes values between tests without invalidating cached entry
// pointers. Snapshot() returns the full registry as a MetricsSnapshot for
// the machine-readable exporters and the serve daemon's `metrics` verb.

#ifndef SRC_UTIL_COUNTERS_H_
#define SRC_UTIL_COUNTERS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/stats.h"

namespace crius {

// Sorted label set attached to a metric; std::map keeps canonicalization and
// exporter output deterministic regardless of call-site insertion order.
using MetricLabels = std::map<std::string, std::string>;

// `name` when labels is empty, otherwise `name{k1="v1",k2="v2"}` with keys in
// sorted order and values JSON-style escaped. Registry entries are keyed by
// this string, so the same (name, labels) pair always resolves to one entry.
std::string CanonicalMetricName(const std::string& name, const MetricLabels& labels);

class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins double (queue depth, live jobs, ...). Add() is a CAS loop,
// cheap at gauge update rates (once per controller tick, not per event).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  size_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Streaming histogram over log-scaled fixed buckets spanning [1e-9, 1e12).
// Percentiles are geometric interpolations within the hit bucket, clamped to
// the exact observed [min, max]; relative error is bounded by the bucket
// width (10^(1/kBucketsPerDecade) - 1, ~7.5%).
class Histogram {
 public:
  void Record(double value);

  size_t count() const;
  // Interpolated percentile, p in [0, 100]; 0 when empty.
  double Percentile(double p) const;
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  static constexpr int kBucketsPerDecade = 32;
  static constexpr int kMinExp = -9;  // first bucket lower bound 1e-9
  static constexpr int kMaxExp = 12;  // values >= 1e12 land in the overflow bucket
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kBucketsPerDecade + 2;

  static int BucketIndex(double value);
  static double BucketLower(int index);

  double PercentileLocked(double p) const;

  mutable std::mutex mu_;
  RunningStats stats_;
  std::vector<uint64_t> buckets_;  // lazily sized to kNumBuckets
};

// One scalar metric (counter or gauge) in a registry snapshot.
struct MetricSample {
  std::string name;  // base name, labels excluded
  MetricLabels labels;
  double value = 0.0;
};

// One histogram in a registry snapshot.
struct HistogramSample {
  std::string name;
  MetricLabels labels;
  HistogramSnapshot value;
};

// Full registry state at one instant, sorted by canonical metric name within
// each kind. The exporters in src/util/metrics_export.h render this to JSON,
// Prometheus text format, and periodic CSV rows.
struct MetricsSnapshot {
  std::vector<MetricSample> counters;
  std::vector<MetricSample> gauges;
  std::vector<HistogramSample> histograms;
};

class CounterRegistry {
 public:
  // The process-wide registry the macros write to.
  static CounterRegistry& Global();

  // Finds or creates an entry. References stay valid for the registry's
  // lifetime (Reset() zeroes values, never erases entries). The labeled
  // overloads key the entry on CanonicalMetricName(name, labels).
  Counter& GetCounter(const std::string& name);
  Counter& GetCounter(const std::string& name, const MetricLabels& labels);
  Gauge& GetGauge(const std::string& name);
  Gauge& GetGauge(const std::string& name, const MetricLabels& labels);
  Histogram& GetHistogram(const std::string& name);
  Histogram& GetHistogram(const std::string& name, const MetricLabels& labels);

  // Snapshot access (0 / empty when the name was never registered). `name`
  // is the canonical name -- pass CanonicalMetricName(...) for labeled
  // entries.
  int64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  HistogramSnapshot HistogramValues(const std::string& name) const;
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

  // Captures every registered metric; entries are sorted by canonical name.
  MetricsSnapshot Snapshot() const;

  // Zeroes every counter, gauge, and histogram.
  void Reset();

  // True when nothing has been recorded since construction/Reset.
  bool Empty() const;

  // Renders tables of counters, gauges, and histogram summaries.
  std::string DumpTable() const;
  void PrintTable() const;

 private:
  // Entry metadata: the base name + labels the canonical key was built from,
  // kept so Snapshot() does not have to re-parse canonical names.
  struct MetricKey {
    std::string base;
    MetricLabels labels;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, MetricKey> keys_;  // canonical name -> (base, labels)
};

namespace counters_internal {

// Records the scope's wall time in milliseconds into a histogram.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram& hist)
      : hist_(hist), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerMs() {
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_)
            .count();
    hist_.Record(ms);
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace counters_internal

}  // namespace crius

#define CRIUS_COUNTERS_CAT_(a, b) a##b
#define CRIUS_COUNTERS_CAT(a, b) CRIUS_COUNTERS_CAT_(a, b)

#define CRIUS_COUNTER_ADD(name, delta)                       \
  do {                                                       \
    static ::crius::Counter& crius_counter_entry_ =          \
        ::crius::CounterRegistry::Global().GetCounter(name); \
    crius_counter_entry_.Add(delta);                         \
  } while (0)

#define CRIUS_COUNTER_INC(name) CRIUS_COUNTER_ADD(name, 1)

#define CRIUS_GAUGE_SET(name, value)                       \
  do {                                                     \
    static ::crius::Gauge& crius_gauge_entry_ =            \
        ::crius::CounterRegistry::Global().GetGauge(name); \
    crius_gauge_entry_.Set(value);                         \
  } while (0)

#define CRIUS_HISTOGRAM_RECORD(name, value)                    \
  do {                                                         \
    static ::crius::Histogram& crius_histogram_entry_ =        \
        ::crius::CounterRegistry::Global().GetHistogram(name); \
    crius_histogram_entry_.Record(value);                      \
  } while (0)

#define CRIUS_SCOPED_TIMER_MS(name)                                         \
  static ::crius::Histogram& CRIUS_COUNTERS_CAT(crius_timer_hist_,          \
                                                __LINE__) =                 \
      ::crius::CounterRegistry::Global().GetHistogram(name);                \
  ::crius::counters_internal::ScopedTimerMs CRIUS_COUNTERS_CAT(             \
      crius_timer_, __LINE__)(CRIUS_COUNTERS_CAT(crius_timer_hist_, __LINE__))

#endif  // SRC_UTIL_COUNTERS_H_
