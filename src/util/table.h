// Fixed-width text table printer. Every benchmark binary reports its
// paper-figure reproduction through this so the output reads like the paper's
// tables ("rows/series the paper reports").

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace crius {

class Table {
 public:
  // `title` is printed as a banner above the table.
  explicit Table(std::string title);

  // Sets the column headers. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Formats helpers for cells.
  static std::string Fmt(double v, int precision = 2);
  static std::string FmtInt(int64_t v);
  static std::string FmtPercent(double fraction, int precision = 1);  // 0.489 -> "48.9%"
  static std::string FmtFactor(double ratio, int precision = 2);      // 1.49 -> "1.49x"

  // Renders the table to a string.
  std::string Render() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crius

#endif  // SRC_UTIL_TABLE_H_
