#include "src/util/csv.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "src/util/check.h"

namespace crius {
namespace csv {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';  // doubled quote inside a quoted field
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

std::string EscapeField(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void WriteRow(std::ostream& out, const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << EscapeField(fields[i]);
  }
  out << '\n';
}

double ParseDouble(const std::string& s, const char* what, int line_no, const char* context) {
  CRIUS_CHECK_MSG(!s.empty(), context << " line " << line_no << ": empty " << what);
  size_t pos = 0;
  double v = 0.0;
  bool ok = true;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    ok = false;
  }
  CRIUS_CHECK_MSG(ok && pos == s.size(),
                  context << " line " << line_no << ": bad " << what << " '" << s << "'");
  return v;
}

int64_t ParseInt(const std::string& s, const char* what, int line_no, const char* context) {
  const double v = ParseDouble(s, what, line_no, context);
  CRIUS_CHECK_MSG(v == std::floor(v),
                  context << " line " << line_no << ": non-integer " << what);
  return static_cast<int64_t>(v);
}

Reader::Reader(std::istream& in, std::string context, std::string header_prefix)
    : in_(in), context_(std::move(context)), header_prefix_(std::move(header_prefix)) {}

bool Reader::Next() {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_no_;
    if (line.empty() || line == "\r") {
      continue;
    }
    if (!header_seen_) {
      header_seen_ = true;
      CRIUS_CHECK_MSG(line.rfind(header_prefix_, 0) == 0, context_ << " missing header row");
      continue;
    }
    fields_ = SplitLine(line);
    return true;
  }
  return false;
}

void Reader::ExpectFields(size_t n) const {
  CRIUS_CHECK_MSG(fields_.size() == n, context_ << " line " << line_no_ << ": expected " << n
                                                << " fields, got " << fields_.size());
}

const std::string& Reader::Field(size_t i) const {
  CRIUS_CHECK(i < fields_.size());
  return fields_[i];
}

double Reader::Double(size_t i, const char* what) const {
  return ParseDouble(Field(i), what, line_no_, context_.c_str());
}

int64_t Reader::Int(size_t i, const char* what) const {
  return ParseInt(Field(i), what, line_no_, context_.c_str());
}

}  // namespace csv
}  // namespace crius
