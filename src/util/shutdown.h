// Cooperative SIGINT/SIGTERM shutdown.
//
// Long-running entry points (crius_sim's event loop, the crius_serve daemon)
// install the handler once; the handler only sets an atomic flag, and the
// main loops poll ShutdownRequested() at their next step boundary, flush
// partial outputs (CSVs, Chrome traces, the session event log), and exit with
// the conventional 128 + signal status. Nothing async-signal-unsafe happens
// in the handler itself.

#ifndef SRC_UTIL_SHUTDOWN_H_
#define SRC_UTIL_SHUTDOWN_H_

namespace crius {

// Installs the SIGINT/SIGTERM handlers (idempotent).
void InstallShutdownHandler();

// True once a shutdown signal was received (or RequestShutdown was called).
bool ShutdownRequested();

// The signal that triggered shutdown, 0 if none yet. Tools exit with
// 128 + ShutdownSignal() after flushing.
int ShutdownSignal();

// Programmatic trigger: used by the serve `shutdown` command and by tests in
// place of delivering a real signal.
void RequestShutdown(int signal_number);

// Clears the flag so one test can exercise several shutdown cycles.
void ResetShutdownForTest();

}  // namespace crius

#endif  // SRC_UTIL_SHUTDOWN_H_
