#include "src/util/trace.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

namespace crius {

namespace {

// Escapes a string for inclusion inside a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Subsystem track of a span name: the prefix before the first '.', or the
// whole name when there is none ("sched.round" -> "sched").
std::string SubsystemOf(const char* name) {
  const std::string full(name);
  const size_t dot = full.find('.');
  return dot == std::string::npos ? full : full.substr(0, dot);
}

std::string FormatNumber(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

double TraceRecorder::NowUs() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceRecorder::TrackLocked(int pid, const std::string& name) {
  const auto key = std::make_pair(pid, name);
  auto it = track_ids_.find(key);
  if (it != track_ids_.end()) {
    return it->second;
  }
  TrackInfo info;
  info.pid = pid;
  info.tid = static_cast<int>(tracks_.size()) + 1;
  info.name = name;
  tracks_.push_back(info);
  const int id = static_cast<int>(tracks_.size()) - 1;
  track_ids_.emplace(key, id);
  return id;
}

int TraceRecorder::Track(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return TrackLocked(pid, name);
}

void TraceRecorder::BeginSpan(const char* name, std::string args_json) {
  if (!enabled()) {
    return;
  }
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  SpanFrame frame;
  frame.track = TrackLocked(kRealtimePid, SubsystemOf(name));
  frame.t0_us = now;
  frame.name = name;
  frame.args_json = std::move(args_json);
  span_stacks_[std::this_thread::get_id()].push_back(std::move(frame));
}

void TraceRecorder::EndSpan() {
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanFrame>& stack = span_stacks_[std::this_thread::get_id()];
  if (stack.empty()) {
    return;  // unbalanced end (e.g. Clear() raced a live span); drop it
  }
  SpanFrame frame = std::move(stack.back());
  stack.pop_back();
  Event e;
  e.phase = 'X';
  e.track = frame.track;
  e.ts_us = frame.t0_us;
  e.dur_us = now - frame.t0_us;
  e.name = std::move(frame.name);
  e.args_json = std::move(frame.args_json);
  events_.push_back(std::move(e));
}

void TraceRecorder::Instant(const std::string& name, std::string args_json) {
  if (!enabled()) {
    return;
  }
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.phase = 'i';
  e.track = TrackLocked(kRealtimePid, SubsystemOf(name.c_str()));
  e.ts_us = now;
  e.name = name;
  e.args_json = std::move(args_json);
  events_.push_back(std::move(e));
}

void TraceRecorder::CounterSample(const std::string& name, double value) {
  if (!enabled()) {
    return;
  }
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.phase = 'C';
  e.track = TrackLocked(kRealtimePid, "counters");
  e.ts_us = now;
  e.name = name;
  e.args_json = "{\"value\": " + FormatNumber(value) + "}";
  events_.push_back(std::move(e));
}

void TraceRecorder::CompleteEvent(int track, std::string name, double ts_us, double dur_us,
                                  std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.phase = 'X';
  e.track = track;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.name = std::move(name);
  e.args_json = std::move(args_json);
  events_.push_back(std::move(e));
}

void TraceRecorder::InstantEvent(int track, std::string name, double ts_us,
                                 std::string args_json) {
  std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.phase = 'i';
  e.track = track;
  e.ts_us = ts_us;
  e.name = std::move(name);
  e.args_json = std::move(args_json);
  events_.push_back(std::move(e));
}

void TraceRecorder::CounterEvent(int track, std::string name, double ts_us, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Event e;
  e.phase = 'C';
  e.track = track;
  e.ts_us = ts_us;
  e.name = std::move(name);
  e.args_json = "{\"value\": " + FormatNumber(value) + "}";
  events_.push_back(std::move(e));
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  tracks_.clear();
  track_ids_.clear();
  span_stacks_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n\"displayTimeUnit\": \"ms\",\n";
  // Wall-clock time is confined to this metadata block; the event stream
  // itself is deterministic in structure.
  const int64_t unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count();
  out << "\"otherData\": {\"tool\": \"crius\", \"export_unix_ms\": " << unix_ms << "},\n";
  out << "\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n ";
  };
  // Process + track naming metadata.
  bool realtime_named = false;
  bool sim_named = false;
  for (const TrackInfo& t : tracks_) {
    if (t.pid == kRealtimePid && !realtime_named) {
      realtime_named = true;
      sep();
      out << "{\"ph\": \"M\", \"pid\": " << kRealtimePid
          << ", \"name\": \"process_name\", \"args\": {\"name\": \"crius (real time)\"}}";
    }
    if (t.pid == kSimPid && !sim_named) {
      sim_named = true;
      sep();
      out << "{\"ph\": \"M\", \"pid\": " << kSimPid
          << ", \"name\": \"process_name\", \"args\": {\"name\": \"simulation (sim time)\"}}";
    }
    sep();
    out << "{\"ph\": \"M\", \"pid\": " << t.pid << ", \"tid\": " << t.tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \"" << JsonEscape(t.name)
        << "\"}}";
  }
  for (const Event& e : events_) {
    const TrackInfo& t = tracks_[static_cast<size_t>(e.track)];
    sep();
    out << "{\"name\": \"" << JsonEscape(e.name) << "\", \"ph\": \"" << e.phase
        << "\", \"pid\": " << t.pid << ", \"tid\": " << t.tid
        << ", \"ts\": " << FormatNumber(e.ts_us);
    if (e.phase == 'X') {
      out << ", \"dur\": " << FormatNumber(e.dur_us);
    }
    if (e.phase == 'i') {
      out << ", \"s\": \"t\"";
    }
    if (!e.args_json.empty()) {
      out << ", \"args\": " << e.args_json;
    }
    out << "}";
  }
  out << "\n]\n}\n";
}

bool TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteJson(out);
  return out.good();
}

}  // namespace crius
