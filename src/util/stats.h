// Small descriptive-statistics helpers used by metrics collection and benches.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace crius {

// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

// Geometric mean; 0 for an empty input. Requires all entries > 0.
double GeoMean(const std::vector<double>& v);

// Population standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& v);

// Linear-interpolated percentile, p in [0, 100]. Requires a non-empty input.
double Percentile(std::vector<double> v, double p);

// Median (50th percentile). Requires a non-empty input.
double Median(std::vector<double> v);

// Maximum / minimum. Require a non-empty input.
double Max(const std::vector<double>& v);
double Min(const std::vector<double>& v);

// Sum; 0 for an empty input.
double Sum(const std::vector<double>& v);

// Streaming mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace crius

#endif  // SRC_UTIL_STATS_H_
