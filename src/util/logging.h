// Minimal leveled logging. The simulator and schedulers log through this so
// that benches can silence per-round chatter while tests can turn it on.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace crius {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global threshold; messages below it are dropped. Default: kWarning.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr with a level prefix if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace log_internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, oss_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace log_internal

}  // namespace crius

#define CRIUS_LOG(level) ::crius::log_internal::LogLine(::crius::LogLevel::level)

#endif  // SRC_UTIL_LOGGING_H_
