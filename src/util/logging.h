// Minimal leveled logging. The simulator and schedulers log through this so
// that benches can silence per-round chatter while tests can turn it on.
//
// The startup threshold honors the CRIUS_LOG_LEVEL environment variable
// (debug|info|warning|error|off, case-insensitive); unset or unparseable
// values keep the kWarning default. Each emitted line is prefixed with the
// level name and a monotonic elapsed-time stamp since the first log call:
//   [crius INFO +12.345s] message

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>

namespace crius {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global threshold; messages below it are dropped. Default: kWarning, or
// CRIUS_LOG_LEVEL when set at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name ("debug", "info", "warning"/"warn", "error", "off"),
// case-insensitive; nullopt on anything else.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

// Emits one line to stderr with a level prefix if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace log_internal {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, oss_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};

}  // namespace log_internal

}  // namespace crius

#define CRIUS_LOG(level) ::crius::log_internal::LogLine(::crius::LogLevel::level)

#endif  // SRC_UTIL_LOGGING_H_
