#include "src/util/counters.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/json.h"
#include "src/util/table.h"

namespace crius {

std::string CanonicalMetricName(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += key;
    out += "=";
    out += Json::EscapeString(value);
  }
  out += "}";
  return out;
}

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) {
    return 0;  // zero / negative / NaN underflow bucket
  }
  const double exp = std::log10(value);
  const int index =
      1 + static_cast<int>(std::floor((exp - static_cast<double>(kMinExp)) *
                                      static_cast<double>(kBucketsPerDecade)));
  return std::clamp(index, 0, kNumBuckets - 1);
}

double Histogram::BucketLower(int index) {
  // Inverse of BucketIndex for the regular buckets [1, kNumBuckets - 1).
  const double exp = static_cast<double>(kMinExp) +
                     static_cast<double>(index - 1) / static_cast<double>(kBucketsPerDecade);
  return std::pow(10.0, exp);
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (buckets_.empty()) {
    buckets_.assign(static_cast<size_t>(kNumBuckets), 0);
  }
  stats_.Add(value);
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
}

size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.count();
}

double Histogram::PercentileLocked(double p) const {
  const size_t n = stats_.count();
  if (n == 0) {
    return 0.0;
  }
  // Same rank convention as stats.h's Percentile (linear in [0, n-1]).
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(n - 1);
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cum + in_bucket) > rank) {
      double value;
      if (i == 0 || i == kNumBuckets - 1) {
        value = i == 0 ? stats_.min() : stats_.max();
      } else {
        // Geometric interpolation by rank position within the bucket.
        const double lower = BucketLower(i);
        const double upper = BucketLower(i + 1);
        const double frac =
            std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(in_bucket),
                       0.0, 1.0);
        value = lower * std::pow(upper / lower, frac);
      }
      return std::clamp(value, stats_.min(), stats_.max());
    }
    cum += in_bucket;
  }
  return stats_.max();
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PercentileLocked(p);
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot s;
  s.count = stats_.count();
  s.sum = stats_.sum();
  s.mean = stats_.mean();
  s.min = stats_.min();
  s.max = stats_.max();
  s.p50 = PercentileLocked(50.0);
  s.p95 = PercentileLocked(95.0);
  s.p99 = PercentileLocked(99.0);
  return s;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Drop the extrema along with the buckets: percentile interpolation clamps
  // to stats_.min()/max(), so any surviving pre-Reset extremum would leak
  // into the clamp range of post-Reset recordings.
  stats_ = RunningStats{};
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

CounterRegistry& CounterRegistry::Global() {
  static CounterRegistry* registry = new CounterRegistry();
  return *registry;
}

Counter& CounterRegistry::GetCounter(const std::string& name) {
  return GetCounter(name, MetricLabels{});
}

Counter& CounterRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  const std::string canonical = CanonicalMetricName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[canonical];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    keys_[canonical] = MetricKey{name, labels};
  }
  return *slot;
}

Gauge& CounterRegistry::GetGauge(const std::string& name) {
  return GetGauge(name, MetricLabels{});
}

Gauge& CounterRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  const std::string canonical = CanonicalMetricName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[canonical];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    keys_[canonical] = MetricKey{name, labels};
  }
  return *slot;
}

Histogram& CounterRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, MetricLabels{});
}

Histogram& CounterRegistry::GetHistogram(const std::string& name, const MetricLabels& labels) {
  const std::string canonical = CanonicalMetricName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[canonical];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    keys_[canonical] = MetricKey{name, labels};
  }
  return *slot;
}

int64_t CounterRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double CounterRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

HistogramSnapshot CounterRegistry::HistogramValues(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second->Snapshot();
}

std::vector<std::string> CounterRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> CounterRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> CounterRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    names.push_back(name);
  }
  return names;
}

MetricsSnapshot CounterRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  // Map iteration is sorted by canonical name, which fixes exporter order.
  for (const auto& [canonical, counter] : counters_) {
    const MetricKey& key = keys_.at(canonical);
    snap.counters.push_back(
        MetricSample{key.base, key.labels, static_cast<double>(counter->value())});
  }
  for (const auto& [canonical, gauge] : gauges_) {
    const MetricKey& key = keys_.at(canonical);
    snap.gauges.push_back(MetricSample{key.base, key.labels, gauge->value()});
  }
  for (const auto& [canonical, hist] : histograms_) {
    const MetricKey& key = keys_.at(canonical);
    snap.histograms.push_back(HistogramSample{key.base, key.labels, hist->Snapshot()});
  }
  return snap;
}

void CounterRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

bool CounterRegistry::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    if (counter->value() != 0) {
      return false;
    }
  }
  for (const auto& [name, gauge] : gauges_) {
    if (gauge->value() != 0.0) {
      return false;
    }
  }
  for (const auto& [name, hist] : histograms_) {
    if (hist->count() != 0) {
      return false;
    }
  }
  return true;
}

std::string CounterRegistry::DumpTable() const {
  // Snapshot under the lock, render outside it (Table is self-contained).
  std::vector<std::pair<std::string, int64_t>> counter_rows;
  std::vector<std::pair<std::string, double>> gauge_rows;
  std::vector<std::pair<std::string, HistogramSnapshot>> hist_rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      if (counter->value() != 0) {
        counter_rows.emplace_back(name, counter->value());
      }
    }
    for (const auto& [name, gauge] : gauges_) {
      if (gauge->value() != 0.0) {
        gauge_rows.emplace_back(name, gauge->value());
      }
    }
    for (const auto& [name, hist] : histograms_) {
      if (hist->count() != 0) {
        hist_rows.emplace_back(name, hist->Snapshot());
      }
    }
  }

  std::string out;
  Table counters_table("Counters");
  counters_table.SetHeader({"counter", "value"});
  for (const auto& [name, value] : counter_rows) {
    counters_table.AddRow({name, Table::FmtInt(value)});
  }
  if (!counter_rows.empty()) {
    out += counters_table.Render();
  }

  Table gauges_table("Gauges");
  gauges_table.SetHeader({"gauge", "value"});
  for (const auto& [name, value] : gauge_rows) {
    gauges_table.AddRow({name, Table::Fmt(value, 3)});
  }
  if (!gauge_rows.empty()) {
    if (!out.empty()) {
      out += "\n";
    }
    out += gauges_table.Render();
  }

  Table hist_table("Histograms");
  hist_table.SetHeader({"histogram", "count", "mean", "min", "max", "p50", "p95", "p99"});
  for (const auto& [name, s] : hist_rows) {
    hist_table.AddRow({name, Table::FmtInt(static_cast<int64_t>(s.count)), Table::Fmt(s.mean, 3),
                       Table::Fmt(s.min, 3), Table::Fmt(s.max, 3), Table::Fmt(s.p50, 3),
                       Table::Fmt(s.p95, 3), Table::Fmt(s.p99, 3)});
  }
  if (!hist_rows.empty()) {
    if (!out.empty()) {
      out += "\n";
    }
    out += hist_table.Render();
  }
  if (out.empty()) {
    out = "(no counters recorded)\n";
  }
  return out;
}

void CounterRegistry::PrintTable() const {
  std::fputs(DumpTable().c_str(), stdout);
}

}  // namespace crius
