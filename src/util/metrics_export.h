// Machine-readable exporters for CounterRegistry snapshots.
//
// Three output shapes, all deterministic given the snapshot (entries arrive
// sorted by canonical metric name, numbers render via FormatJsonNumber):
//
//   * MetricsToJson / ParseMetricsJson -- nested JSON document, one entry per
//     metric with its labels spelled out. Round-trips exactly: the serve
//     daemon's `metrics` verb ships this over the wire and crius_client /
//     tests parse it back into a MetricsSnapshot.
//   * MetricsToPrometheus -- Prometheus text exposition format (counters as
//     `# TYPE x counter`, gauges as gauge, histograms as summary with
//     quantile labels plus _sum/_count). Base names are sanitized to the
//     Prometheus charset ('.' and '-' become '_').
//   * MetricsCsvWriter -- periodic wide-row CSV (one column per scalar
//     metric, histograms contribute <name>.p50/.p95/.count columns), used by
//     the serve daemon's --metrics-csv side channel. The header is fixed by
//     the first Append call; metrics born later are dropped from the file
//     (noted in a trailing comment column set) rather than re-headering.

#ifndef SRC_UTIL_METRICS_EXPORT_H_
#define SRC_UTIL_METRICS_EXPORT_H_

#include <string>
#include <vector>

#include "src/util/counters.h"

namespace crius {

// Serializes the snapshot as a JSON document:
//   {"schema":1,"counters":[{"name":...,"labels":{...},"value":...}],
//    "gauges":[...],"histograms":[{"name":...,"labels":{...},
//      "count":...,"sum":...,"mean":...,"min":...,"max":...,
//      "p50":...,"p95":...,"p99":...}]}
// `indent < 0` gives compact single-line output.
std::string MetricsToJson(const MetricsSnapshot& snapshot, int indent = -1);

// Inverse of MetricsToJson. Returns false with a message in *error on
// malformed input or schema mismatch.
bool ParseMetricsJson(const std::string& text, MetricsSnapshot* out, std::string* error);

// Prometheus text exposition format (version 0.0.4).
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

// Writes MetricsToJson(snapshot, 2) to `path` atomically (temp file +
// rename). Returns false on I/O failure.
bool WriteMetricsJsonFile(const std::string& path, const MetricsSnapshot& snapshot);

// Appends periodic wide-row CSV snapshots to a file. Column set is locked in
// by the first Append(); later-born metrics are ignored so every row parses
// against the single header.
class MetricsCsvWriter {
 public:
  explicit MetricsCsvWriter(std::string path) : path_(std::move(path)) {}

  // Appends one row (writing the header first on the initial call).
  // `timestamp` is caller-supplied (wall seconds or virtual time) and lands
  // in the leading `time` column. Returns false on I/O failure.
  bool Append(double timestamp, const MetricsSnapshot& snapshot);

  const std::vector<std::string>& columns() const { return columns_; }

 private:
  std::string path_;
  bool wrote_header_ = false;
  std::vector<std::string> columns_;  // canonical scalar column names, post-header
};

}  // namespace crius

#endif  // SRC_UTIL_METRICS_EXPORT_H_
