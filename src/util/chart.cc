#include "src/util/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace crius {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

}  // namespace

std::vector<double> Resample(const std::vector<double>& values, int n) {
  CRIUS_CHECK(n >= 1);
  std::vector<double> out(static_cast<size_t>(n));
  if (values.empty()) {
    return out;
  }
  if (values.size() == 1 || n == 1) {
    std::fill(out.begin(), out.end(), values[0]);
    return out;
  }
  for (int i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i) * static_cast<double>(values.size() - 1) /
                       static_cast<double>(n - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[static_cast<size_t>(i)] = values[lo] + (values[hi] - values[lo]) * frac;
  }
  return out;
}

std::string Sparkline(const std::vector<double>& values) {
  if (values.empty()) {
    return "";
  }
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (double v : values) {
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>(std::floor((v - lo) / (hi - lo) * 7.999));
    }
    out += kBlocks[std::clamp(level, 0, 7)];
  }
  return out;
}

std::string RenderLineChart(const std::string& title, const std::vector<ChartSeries>& series,
                            const ChartOptions& options) {
  CRIUS_CHECK(options.width >= 16);
  CRIUS_CHECK(options.height >= 4);
  CRIUS_CHECK(!series.empty());

  double y_min = options.y_min;
  double y_max = options.y_max;
  if (y_min == y_max) {
    y_min = 1e300;
    y_max = -1e300;
    for (const ChartSeries& s : series) {
      for (double v : s.values) {
        y_min = std::min(y_min, v);
        y_max = std::max(y_max, v);
      }
    }
    if (y_min > y_max) {
      y_min = 0.0;
      y_max = 1.0;
    }
    if (y_min == y_max) {
      y_max = y_min + 1.0;
    }
    // A little headroom.
    const double pad = (y_max - y_min) * 0.05;
    y_max += pad;
    y_min = std::max(0.0, y_min - pad);
  }

  // Canvas: rows x columns of glyphs, row 0 = top.
  std::vector<std::string> canvas(static_cast<size_t>(options.height),
                                  std::string(static_cast<size_t>(options.width), ' '));
  for (size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const std::vector<double> pts = Resample(series[si].values, options.width);
    for (int col = 0; col < options.width; ++col) {
      const double v = pts[static_cast<size_t>(col)];
      const double frac = (v - y_min) / (y_max - y_min);
      const int row = options.height - 1 -
                      std::clamp(static_cast<int>(std::round(frac * (options.height - 1))), 0,
                                 options.height - 1);
      canvas[static_cast<size_t>(row)][static_cast<size_t>(col)] = glyph;
    }
  }

  std::ostringstream oss;
  oss << "\n== " << title << " ==\n";
  // Legend.
  for (size_t si = 0; si < series.size(); ++si) {
    oss << "  " << kGlyphs[si % sizeof(kGlyphs)] << " " << series[si].label;
  }
  oss << "\n";
  if (!options.y_label.empty()) {
    oss << options.y_label << "\n";
  }
  char buf[32];
  for (int row = 0; row < options.height; ++row) {
    const double v = y_max - (y_max - y_min) * static_cast<double>(row) /
                                 static_cast<double>(options.height - 1);
    std::snprintf(buf, sizeof(buf), "%8.1f |", v);
    oss << buf << canvas[static_cast<size_t>(row)] << "\n";
  }
  oss << std::string(9, ' ') << '+' << std::string(static_cast<size_t>(options.width), '-')
      << "\n";
  if (!options.x_label.empty()) {
    oss << std::string(10, ' ') << options.x_label << "\n";
  }
  return oss.str();
}

}  // namespace crius
