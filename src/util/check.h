// Lightweight runtime-check macros used across the Crius code base.
//
// CRIUS_CHECK(cond)        -- aborts with a diagnostic if `cond` is false, in all builds.
// CRIUS_CHECK_MSG(cond, m) -- same, with an extra human-readable message.
// CRIUS_UNREACHABLE(m)     -- marks code paths that must never execute.
//
// These are hard invariant checks (programming errors), not error handling for
// expected runtime conditions; recoverable failures use status-style returns.

#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace crius {

// Aborts the process after printing `message` with source location context.
// Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace crius

#define CRIUS_CHECK(cond)                                       \
  do {                                                          \
    if (!(cond)) {                                              \
      ::crius::CheckFailed(__FILE__, __LINE__, #cond, "");      \
    }                                                           \
  } while (0)

#define CRIUS_CHECK_MSG(cond, msg)                              \
  do {                                                          \
    if (!(cond)) {                                              \
      std::ostringstream crius_check_oss_;                      \
      crius_check_oss_ << msg;                                  \
      ::crius::CheckFailed(__FILE__, __LINE__, #cond,           \
                           crius_check_oss_.str());             \
    }                                                           \
  } while (0)

#define CRIUS_UNREACHABLE(msg)                                  \
  ::crius::CheckFailed(__FILE__, __LINE__, "unreachable", msg)

#endif  // SRC_UTIL_CHECK_H_
