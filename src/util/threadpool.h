// Small work-stealing thread pool for the scheduling/estimation hot path.
//
// Design goals, in order:
//   1. Determinism. ParallelFor(n, fn) runs fn(0..n-1) with results written
//      into caller-owned index slots, so the outcome is independent of which
//      worker runs which index. Any shared state fn touches must be
//      thread-safe AND order-independent (pure memoization caches qualify:
//      every thread computes the same value for the same key).
//   2. Zero cost when off. With threads == 1 (the default) no workers exist
//      and ParallelFor degenerates to a plain sequential loop on the calling
//      thread -- bit-identical to the pre-threading code path.
//   3. No nested parallelism surprises. A ParallelFor issued from inside a
//      pool task runs inline on that worker; only the outermost call fans out.
//
// Work distribution: indices are dealt round-robin into per-worker deques;
// each worker drains its own deque front-first and steals from the back of
// sibling deques when empty. The calling thread participates as worker 0, so
// ParallelFor never blocks on a fully busy pool.
//
// The process-wide pool is sized by ThreadPool::SetGlobalThreads (the
// --threads flag of crius_sim / crius_plan); call it from main before any
// parallel section, not concurrently with one.

#ifndef SRC_UTIL_THREADPOOL_H_
#define SRC_UTIL_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crius {

class ThreadPool {
 public:
  // `threads` is the total parallelism including the calling thread;
  // clamped to >= 1. threads == 1 spawns no workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(i) for every i in [0, n). Blocks until all calls returned. The
  // calling thread executes tasks too. Concurrent/nested ParallelFor calls
  // run their loops inline (only one fan-out is active at a time).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // --- Process-wide pool ------------------------------------------------------
  static ThreadPool& Global();
  // Resizes the global pool (recreates it). Not safe concurrently with a
  // running ParallelFor; intended for main() / test setup.
  static void SetGlobalThreads(int threads);
  static int GlobalThreads();

 private:
  struct Deque {
    std::mutex mu;
    std::deque<size_t> indices;
  };

  void WorkerLoop(int worker);
  // Pops one index for `worker` (own deque first, then steal). Returns false
  // when the current batch has no queued work left.
  bool PopIndex(int worker, size_t* index, bool* stolen);
  void RunOne(size_t index);

  const int threads_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Deque>> deques_;  // one per participant, [0] = caller

  // Batch state: one ParallelFor at a time.
  std::mutex batch_mu_;                 // serializes ParallelFor callers
  std::mutex mu_;                       // guards fn_/generation_ wake-ups
  std::condition_variable work_cv_;     // workers wait for a new batch
  std::condition_variable done_cv_;     // caller waits for remaining_ == 0
  const std::function<void(size_t)>* fn_ = nullptr;
  uint64_t generation_ = 0;
  std::atomic<size_t> remaining_{0};
  bool shutdown_ = false;
};

}  // namespace crius

#endif  // SRC_UTIL_THREADPOOL_H_
