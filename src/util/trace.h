// Structured tracing with Chrome trace_event JSON export.
//
// A process-wide TraceRecorder collects three event kinds:
//   * scoped spans      -- CRIUS_TRACE_SPAN("estimator.grid_sample") opens an
//                          RAII span on the current thread; nesting is
//                          preserved. The span's subsystem track is derived
//                          from the name prefix before the first '.'.
//   * instant events    -- CRIUS_TRACE_INSTANT("sched.drop")
//   * counter samples   -- CRIUS_TRACE_COUNTER("sched.free_gpus", 12)
//
// The export is Chrome trace_event-format JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev. Tracks are (pid, tid) pairs named through
// metadata events: live spans land on per-subsystem tracks under the
// "crius (real time)" process; offline converters (src/sim/chrome_export)
// append per-job and per-round tracks under a "simulation (sim time)" process
// whose timestamps are simulated seconds.
//
// Cost model: recording is off by default. Every macro first does one relaxed
// atomic load; when disabled nothing else happens, so instrumented hot paths
// run at full speed (defining CRIUS_TRACE_DISABLED additionally compiles the
// macros away entirely). Event content is deterministic in structure --
// wall-clock time appears only in the export's metadata block -- so tests can
// golden-check the JSON.

#ifndef SRC_UTIL_TRACE_H_
#define SRC_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace crius {

class TraceRecorder {
 public:
  // Process ids of the exported tracks. Live spans carry real microseconds
  // since the recorder epoch; sim tracks carry simulated seconds * 1e6.
  static constexpr int kRealtimePid = 1;
  static constexpr int kSimPid = 2;

  TraceRecorder();

  // The process-wide recorder the macros write to.
  static TraceRecorder& Global();

  // Toggles macro-path recording. Explicit-timestamp events (below) are
  // always accepted so offline converters work on a disabled recorder.
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Registers (or looks up) the track `name` under process `pid`; returns its
  // tid. Track registration order is deterministic in recording order.
  int Track(int pid, const std::string& name);

  // --- Macro path: real-time events on the calling thread -------------------
  // `args_json`, when non-empty, must be a complete JSON object ("{...}").
  void BeginSpan(const char* name, std::string args_json = {});
  void EndSpan();
  void Instant(const std::string& name, std::string args_json = {});
  void CounterSample(const std::string& name, double value);

  // --- Explicit-timestamp events (offline conversion; always recorded) ------
  void CompleteEvent(int track, std::string name, double ts_us, double dur_us,
                     std::string args_json = {});
  void InstantEvent(int track, std::string name, double ts_us, std::string args_json = {});
  void CounterEvent(int track, std::string name, double ts_us, double value);

  // Drops all events and tracks and restarts the epoch.
  void Clear();

  // Number of recorded events (metadata excluded).
  size_t size() const;

  // Writes the full trace as Chrome trace_event JSON.
  void WriteJson(std::ostream& out) const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Event {
    char phase = 'X';  // 'X' complete, 'i' instant, 'C' counter
    int track = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;  // complete events only
    std::string name;
    std::string args_json;  // complete JSON object, may be empty
  };
  struct TrackInfo {
    int pid = kRealtimePid;
    int tid = 0;
    std::string name;
  };
  struct SpanFrame {
    int track = 0;
    double t0_us = 0.0;
    std::string name;
    std::string args_json;
  };

  double NowUs() const;
  int TrackLocked(int pid, const std::string& name);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Event> events_;
  std::vector<TrackInfo> tracks_;
  std::map<std::pair<int, std::string>, int> track_ids_;
  std::map<std::thread::id, std::vector<SpanFrame>> span_stacks_;
};

namespace trace_internal {

// RAII span bound to the global recorder; captures enablement at entry so a
// mid-span toggle cannot unbalance the stack.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    TraceRecorder& rec = TraceRecorder::Global();
    if (rec.enabled()) {
      active_ = true;
      rec.BeginSpan(name);
    }
  }
  ScopedSpan(const char* name, std::string args_json) {
    TraceRecorder& rec = TraceRecorder::Global();
    if (rec.enabled()) {
      active_ = true;
      rec.BeginSpan(name, std::move(args_json));
    }
  }
  ~ScopedSpan() {
    if (active_) {
      TraceRecorder::Global().EndSpan();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
};

}  // namespace trace_internal

}  // namespace crius

#define CRIUS_TRACE_CAT_(a, b) a##b
#define CRIUS_TRACE_CAT(a, b) CRIUS_TRACE_CAT_(a, b)

#ifdef CRIUS_TRACE_DISABLED

#define CRIUS_TRACE_SPAN(name) \
  do {                         \
  } while (0)
#define CRIUS_TRACE_SPAN_ARGS(name, args_json) \
  do {                                         \
  } while (0)
#define CRIUS_TRACE_INSTANT(name) \
  do {                            \
  } while (0)
#define CRIUS_TRACE_COUNTER(name, value) \
  do {                                   \
  } while (0)

#else

#define CRIUS_TRACE_SPAN(name) \
  ::crius::trace_internal::ScopedSpan CRIUS_TRACE_CAT(crius_trace_span_, __LINE__)(name)
#define CRIUS_TRACE_SPAN_ARGS(name, args_json) \
  ::crius::trace_internal::ScopedSpan CRIUS_TRACE_CAT(crius_trace_span_, __LINE__)(name, args_json)
#define CRIUS_TRACE_INSTANT(name)                            \
  do {                                                       \
    if (::crius::TraceRecorder::Global().enabled()) {        \
      ::crius::TraceRecorder::Global().Instant(name);        \
    }                                                        \
  } while (0)
#define CRIUS_TRACE_COUNTER(name, value)                         \
  do {                                                           \
    if (::crius::TraceRecorder::Global().enabled()) {            \
      ::crius::TraceRecorder::Global().CounterSample(name, value); \
    }                                                            \
  } while (0)

#endif  // CRIUS_TRACE_DISABLED

#endif  // SRC_UTIL_TRACE_H_
