// BenchReport: the persistent BENCH_*.json perf-trajectory format, plus the
// baseline-vs-fresh comparison behind tools/crius_benchdiff.
//
// Every bench that participates in the trajectory writes one report:
//
//   {"bench":"ext_rounds","schema":1,
//    "meta":{"cluster":"testbed","smoke":"true"},
//    "metrics":{"incremental.median_steady_ms":
//               {"value":4.2,"unit":"ms","better":"lower","threshold":0.5}}}
//
// `better` says which direction is good ("lower" for latencies, "higher" for
// throughputs, "none" for informational values that never gate). `threshold`
// is the per-metric relative regression tolerance; the checked-in baseline's
// value wins over the crius_benchdiff --threshold default, so noisy
// wall-time metrics can carry loose hand-tuned bounds while dimensionless
// ratios stay tight. Serialization is deterministic (sorted metric names,
// shortest round-trip numbers) so baselines diff cleanly in review.
//
// CompareBenchReports is pure and unit-tested (tests/benchdiff_test.cc); the
// CLI in tools/crius_benchdiff.cc is a thin wrapper that renders the result
// table and turns `regressed` into exit code 1.

#ifndef SRC_UTIL_BENCHDIFF_H_
#define SRC_UTIL_BENCHDIFF_H_

#include <map>
#include <string>
#include <vector>

namespace crius {

struct BenchMetricValue {
  double value = 0.0;
  std::string unit;            // "ms", "1/s", "" (dimensionless)
  std::string better = "none"; // "lower" | "higher" | "none"
  double threshold = -1.0;     // relative tolerance; < 0 = benchdiff default
};

struct BenchReport {
  std::string bench;
  std::map<std::string, std::string> meta;             // free-form context
  std::map<std::string, BenchMetricValue> metrics;     // sorted by name

  void AddMetric(const std::string& name, double value, const std::string& unit,
                 const std::string& better, double threshold = -1.0);

  // Pretty-printed (indent 2) deterministic JSON document.
  std::string ToJson() const;
  // Writes ToJson() to `path` atomically (temp file + rename).
  bool WriteFile(const std::string& path) const;

  static bool Parse(const std::string& text, BenchReport* out, std::string* error);
  static bool ReadFile(const std::string& path, BenchReport* out, std::string* error);
};

struct BenchDiffEntry {
  enum class Status {
    kOk,               // within tolerance
    kImproved,         // moved past tolerance in the good direction
    kRegressed,        // moved past tolerance in the bad direction
    kMissingBaseline,  // metric new in the fresh run (informational)
    kMissingFresh,     // metric vanished from the fresh run (fails the gate)
    kNotComparable,    // baseline value <= 0 or better == "none"
  };

  std::string name;
  double baseline = 0.0;
  double fresh = 0.0;
  double ratio = 0.0;      // fresh / baseline (0 when not computable)
  double threshold = 0.0;  // tolerance the verdict used
  std::string better;
  Status status = Status::kOk;
};

struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;  // baseline order, then fresh-only extras
  bool regressed = false;               // any kRegressed or kMissingFresh

  // Human-readable comparison table (one line per entry plus a verdict).
  std::string Render() const;
};

// Compares a fresh run against the checked-in baseline. `default_threshold`
// applies to metrics whose baseline entry carries no threshold of its own.
BenchDiffResult CompareBenchReports(const BenchReport& baseline, const BenchReport& fresh,
                                    double default_threshold);

// The refreshed baseline a `crius_benchdiff --update-baselines` run writes:
// the fresh report's bench name, meta, metric set, and values, but with each
// surviving metric keeping the old baseline's hand-tuned threshold (a value
// refresh must not silently discard tolerance tuning). Metrics absent from
// the fresh run are dropped; fresh-only metrics enter with their own
// threshold. Pure, so tests pin the merge rules directly.
BenchReport UpdateBaseline(const BenchReport& baseline, const BenchReport& fresh);

}  // namespace crius

#endif  // SRC_UTIL_BENCHDIFF_H_
