// Terminal charts for benchmark output: multi-series line charts and
// sparklines rendered in ASCII/Unicode. Fig. 16's throughput timeline reads
// far better as a chart than as a table of buckets.

#ifndef SRC_UTIL_CHART_H_
#define SRC_UTIL_CHART_H_

#include <string>
#include <vector>

namespace crius {

struct ChartSeries {
  std::string label;
  std::vector<double> values;  // uniformly spaced in x
};

struct ChartOptions {
  int width = 100;   // plot columns (series are resampled to fit)
  int height = 16;   // plot rows
  std::string x_label;
  std::string y_label;
  // Y axis range; when min == max the range is derived from the data.
  double y_min = 0.0;
  double y_max = 0.0;
};

// Renders a multi-series line chart. Each series gets a distinct glyph
// (shown in the legend); overlapping points show the later series' glyph.
std::string RenderLineChart(const std::string& title, const std::vector<ChartSeries>& series,
                            const ChartOptions& options = {});

// One-line sparkline using eighth-block glyphs; empty input gives an empty
// string.
std::string Sparkline(const std::vector<double>& values);

// Linear resampling of `values` to `n` points (n >= 1). Preserves endpoints.
std::vector<double> Resample(const std::vector<double>& values, int n);

}  // namespace crius

#endif  // SRC_UTIL_CHART_H_
