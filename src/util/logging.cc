#include "src/util/logging.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace crius {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Seconds since the first logging call (a steady clock, so the stamp is
// monotonic even if the wall clock steps).
double ElapsedSeconds() {
  static const std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

LogLevel InitialLevel() {
  ElapsedSeconds();  // latch the elapsed-time epoch at first use
  if (const char* env = std::getenv("CRIUS_LOG_LEVEL")) {
    if (const std::optional<LogLevel> parsed = ParseLogLevel(env)) {
      return *parsed;
    }
  }
  return LogLevel::kWarning;
}

LogLevel& MutableLevel() {
  static LogLevel level = InitialLevel();
  return level;
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") {
    return LogLevel::kDebug;
  }
  if (lower == "info") {
    return LogLevel::kInfo;
  }
  if (lower == "warning" || lower == "warn") {
    return LogLevel::kWarning;
  }
  if (lower == "error") {
    return LogLevel::kError;
  }
  if (lower == "off") {
    return LogLevel::kOff;
  }
  return std::nullopt;
}

void SetLogLevel(LogLevel level) {
  MutableLevel() = level;
}

LogLevel GetLogLevel() {
  return MutableLevel();
}

void LogMessage(LogLevel level, const std::string& message) {
  if (level < MutableLevel() || level == LogLevel::kOff) {
    return;
  }
  std::fprintf(stderr, "[crius %s +%.3fs] %s\n", LevelName(level), ElapsedSeconds(),
               message.c_str());
}

}  // namespace crius
