#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace crius {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (SplitMix64(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

Rng::Rng(uint64_t seed, std::string_view stream_name) {
  uint64_t x = seed;
  if (!stream_name.empty()) {
    x = HashCombine(seed, HashString(stream_name));
  }
  for (auto& s : s_) {
    x = SplitMix64(x);
    s = x;
  }
  // A state of all zeros would be a fixed point; SplitMix64 cannot produce four
  // consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 uniform mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CRIUS_CHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CRIUS_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r = Next();
  while (r >= limit) {
    r = Next();
  }
  return lo + static_cast<int64_t>(r % span);
}

double Rng::Normal() {
  double u1 = Uniform();
  while (u1 <= 0.0) {
    u1 = Uniform();
  }
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  CRIUS_CHECK(rate > 0.0);
  double u = Uniform();
  while (u <= 0.0) {
    u = Uniform();
  }
  return -std::log(u) / rate;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int64_t Rng::Poisson(double mean) {
  CRIUS_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  // Knuth inversion.
  const double limit = std::exp(-mean);
  double p = 1.0;
  int64_t k = 0;
  do {
    ++k;
    p *= Uniform();
  } while (p > limit);
  return k - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CRIUS_CHECK(w >= 0.0);
    total += w;
  }
  CRIUS_CHECK_MSG(total > 0.0, "WeightedIndex needs a positive weight");
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

double HashNoise(uint64_t seed, uint64_t key) {
  const uint64_t h = SplitMix64(HashCombine(seed, key));
  // Map to [-1, 1].
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double HashJitter(uint64_t seed, uint64_t key, double amplitude) {
  return 1.0 + amplitude * HashNoise(seed, key);
}

}  // namespace crius
