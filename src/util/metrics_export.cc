#include "src/util/metrics_export.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/util/json.h"

namespace crius {

namespace {

constexpr int kMetricsSchemaVersion = 1;

Json LabelsToJson(const MetricLabels& labels) {
  Json obj = Json::Object();
  for (const auto& [key, value] : labels) {
    obj.Set(key, Json::Str(value));
  }
  return obj;
}

Json ScalarToJson(const MetricSample& sample) {
  Json obj = Json::Object();
  obj.Set("name", Json::Str(sample.name));
  if (!sample.labels.empty()) {
    obj.Set("labels", LabelsToJson(sample.labels));
  }
  obj.Set("value", Json::Number(sample.value));
  return obj;
}

Json HistToJson(const HistogramSample& sample) {
  Json obj = Json::Object();
  obj.Set("name", Json::Str(sample.name));
  if (!sample.labels.empty()) {
    obj.Set("labels", LabelsToJson(sample.labels));
  }
  const HistogramSnapshot& s = sample.value;
  obj.Set("count", Json::Number(static_cast<double>(s.count)));
  obj.Set("sum", Json::Number(s.sum));
  obj.Set("mean", Json::Number(s.mean));
  obj.Set("min", Json::Number(s.min));
  obj.Set("max", Json::Number(s.max));
  obj.Set("p50", Json::Number(s.p50));
  obj.Set("p95", Json::Number(s.p95));
  obj.Set("p99", Json::Number(s.p99));
  return obj;
}

bool ParseLabels(const Json& entry, MetricLabels* labels, std::string* error) {
  labels->clear();
  const Json* obj = entry.Find("labels");
  if (obj == nullptr) {
    return true;
  }
  if (!obj->is_object()) {
    *error = "labels must be an object";
    return false;
  }
  for (const auto& [key, value] : obj->fields()) {
    if (!value.is_string()) {
      *error = "label value for '" + key + "' must be a string";
      return false;
    }
    (*labels)[key] = value.str();
  }
  return true;
}

bool ParseScalars(const Json& root, const std::string& field,
                  std::vector<MetricSample>* out, std::string* error) {
  out->clear();
  const Json* arr = root.Find(field);
  if (arr == nullptr) {
    return true;  // absent section == empty
  }
  if (!arr->is_array()) {
    *error = "'" + field + "' must be an array";
    return false;
  }
  for (const Json& entry : arr->items()) {
    MetricSample sample;
    sample.name = entry.StringOr("name", "");
    if (sample.name.empty()) {
      *error = "metric entry in '" + field + "' missing name";
      return false;
    }
    if (!ParseLabels(entry, &sample.labels, error)) {
      return false;
    }
    sample.value = entry.NumberOr("value", 0.0);
    out->push_back(std::move(sample));
  }
  return true;
}

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
// ("serve.round_ms") map '.' and '-' (and anything else outside the charset)
// to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':' ||
                    (i > 0 && c >= '0' && c <= '9');
    if (!ok) {
      out[i] = '_';
    }
  }
  return out;
}

std::string PrometheusLabelValue(const std::string& value) {
  std::string out;
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusLabels(const MetricLabels& labels,
                             const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += PrometheusName(key) + "=\"" + PrometheusLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) {
      out += ",";
    }
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot, int indent) {
  Json root = Json::Object();
  root.Set("schema", Json::Number(kMetricsSchemaVersion));
  Json counters = Json::Array();
  for (const MetricSample& sample : snapshot.counters) {
    counters.Push(ScalarToJson(sample));
  }
  root.Set("counters", std::move(counters));
  Json gauges = Json::Array();
  for (const MetricSample& sample : snapshot.gauges) {
    gauges.Push(ScalarToJson(sample));
  }
  root.Set("gauges", std::move(gauges));
  Json histograms = Json::Array();
  for (const HistogramSample& sample : snapshot.histograms) {
    histograms.Push(HistToJson(sample));
  }
  root.Set("histograms", std::move(histograms));
  return root.Serialize(indent);
}

bool ParseMetricsJson(const std::string& text, MetricsSnapshot* out, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  Json root;
  if (!Json::Parse(text, &root, error)) {
    return false;
  }
  if (!root.is_object()) {
    *error = "metrics document must be a JSON object";
    return false;
  }
  const int schema = static_cast<int>(root.NumberOr("schema", 0.0));
  if (schema != kMetricsSchemaVersion) {
    *error = "unsupported metrics schema " + std::to_string(schema);
    return false;
  }
  if (!ParseScalars(root, "counters", &out->counters, error) ||
      !ParseScalars(root, "gauges", &out->gauges, error)) {
    return false;
  }
  out->histograms.clear();
  const Json* arr = root.Find("histograms");
  if (arr == nullptr) {
    return true;
  }
  if (!arr->is_array()) {
    *error = "'histograms' must be an array";
    return false;
  }
  for (const Json& entry : arr->items()) {
    HistogramSample sample;
    sample.name = entry.StringOr("name", "");
    if (sample.name.empty()) {
      *error = "histogram entry missing name";
      return false;
    }
    if (!ParseLabels(entry, &sample.labels, error)) {
      return false;
    }
    HistogramSnapshot& s = sample.value;
    s.count = static_cast<size_t>(entry.NumberOr("count", 0.0));
    s.sum = entry.NumberOr("sum", 0.0);
    s.mean = entry.NumberOr("mean", 0.0);
    s.min = entry.NumberOr("min", 0.0);
    s.max = entry.NumberOr("max", 0.0);
    s.p50 = entry.NumberOr("p50", 0.0);
    s.p95 = entry.NumberOr("p95", 0.0);
    s.p99 = entry.NumberOr("p99", 0.0);
    out->histograms.push_back(std::move(sample));
  }
  return true;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_typed;  // emit one TYPE line per base name
  auto emit_type = [&out, &last_typed](const std::string& name, const char* type) {
    if (name != last_typed) {
      out += "# TYPE " + name + " " + type + "\n";
      last_typed = name;
    }
  };
  for (const MetricSample& sample : snapshot.counters) {
    const std::string name = PrometheusName(sample.name);
    emit_type(name, "counter");
    out += name + PrometheusLabels(sample.labels) + " " + FormatJsonNumber(sample.value) + "\n";
  }
  for (const MetricSample& sample : snapshot.gauges) {
    const std::string name = PrometheusName(sample.name);
    emit_type(name, "gauge");
    out += name + PrometheusLabels(sample.labels) + " " + FormatJsonNumber(sample.value) + "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const std::string name = PrometheusName(sample.name);
    emit_type(name, "summary");
    const HistogramSnapshot& s = sample.value;
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", s.p50}, {"0.95", s.p95}, {"0.99", s.p99}};
    for (const auto& [q, value] : quantiles) {
      out += name + PrometheusLabels(sample.labels, "quantile", q) + " " +
             FormatJsonNumber(value) + "\n";
    }
    out += name + "_sum" + PrometheusLabels(sample.labels) + " " + FormatJsonNumber(s.sum) + "\n";
    out += name + "_count" + PrometheusLabels(sample.labels) + " " +
           FormatJsonNumber(static_cast<double>(s.count)) + "\n";
  }
  return out;
}

bool WriteMetricsJsonFile(const std::string& path, const MetricsSnapshot& snapshot) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << MetricsToJson(snapshot, 2) << "\n";
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

namespace {

// CSV cells hold canonical metric names, which can contain commas inside the
// label block -- quote anything that needs it.
std::string CsvCell(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) {
    return value;
  }
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

// Flattens a snapshot into (column name -> value): scalars contribute their
// canonical name; histograms contribute .p50/.p95/.count derived columns.
std::map<std::string, double> FlattenSnapshot(const MetricsSnapshot& snapshot) {
  std::map<std::string, double> flat;
  for (const MetricSample& sample : snapshot.counters) {
    flat[CanonicalMetricName(sample.name, sample.labels)] = sample.value;
  }
  for (const MetricSample& sample : snapshot.gauges) {
    flat[CanonicalMetricName(sample.name, sample.labels)] = sample.value;
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    const std::string base = CanonicalMetricName(sample.name, sample.labels);
    flat[base + ".p50"] = sample.value.p50;
    flat[base + ".p95"] = sample.value.p95;
    flat[base + ".count"] = static_cast<double>(sample.value.count);
  }
  return flat;
}

}  // namespace

bool MetricsCsvWriter::Append(double timestamp, const MetricsSnapshot& snapshot) {
  const std::map<std::string, double> flat = FlattenSnapshot(snapshot);
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    return false;
  }
  if (!wrote_header_) {
    columns_.clear();
    columns_.reserve(flat.size());
    std::string header = "time";
    for (const auto& [name, value] : flat) {
      columns_.push_back(name);
      header += "," + CsvCell(name);
    }
    out << header << "\n";
    if (!out) {
      return false;
    }
    wrote_header_ = true;
  }
  std::string row = FormatJsonNumber(timestamp);
  for (const std::string& column : columns_) {
    const auto it = flat.find(column);
    row += ",";
    row += it == flat.end() ? "0" : FormatJsonNumber(it->second);
  }
  out << row << "\n";
  return static_cast<bool>(out);
}

}  // namespace crius
