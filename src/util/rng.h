// Deterministic random-number generation for Crius.
//
// Everything stochastic in this repository -- trace synthesis, profiling-noise
// injection, tie breaking -- is driven by named, seeded streams so that tests
// and benchmark tables are bit-for-bit reproducible across runs and platforms.
//
// Two entry points:
//   * Rng           -- a xoshiro256** generator with convenience distributions.
//   * HashNoise/... -- stateless, key-addressed noise. Used where a value must
//                      be a pure function of its identity (e.g. the measurement
//                      scatter of profiling operator `op` on GPU type `g`), not
//                      of the order in which it is queried.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace crius {

// SplitMix64 step; used for seeding and for stateless key-addressed noise.
uint64_t SplitMix64(uint64_t x);

// 64-bit FNV-1a hash of a string; combines with seeds to derive named streams.
uint64_t HashString(std::string_view s);

// Combines two 64-bit values into one (boost::hash_combine style, 64-bit).
uint64_t HashCombine(uint64_t a, uint64_t b);

// xoshiro256** 1.0 -- small, fast, high-quality PRNG.
class Rng {
 public:
  // Seeds the generator. A named substream is derived as
  // Rng(seed, "trace.philly") so independent components never share a stream.
  explicit Rng(uint64_t seed, std::string_view stream_name = "");

  // Raw 64 uniform bits.
  uint64_t Next();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Normal();

  // Normal with the given mean / standard deviation.
  double Normal(double mean, double stddev);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Poisson-distributed count with the given mean (inversion for small means,
  // normal approximation above 64).
  int64_t Poisson(double mean);

  // Samples an index in [0, weights.size()) proportionally to `weights`.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

// Stateless noise in [-1, 1], a pure function of (seed, key). Use HashCombine /
// HashString to build keys from identities.
double HashNoise(uint64_t seed, uint64_t key);

// Stateless multiplicative jitter: 1 + amplitude * HashNoise(seed, key).
double HashJitter(uint64_t seed, uint64_t key, double amplitude);

}  // namespace crius

#endif  // SRC_UTIL_RNG_H_
