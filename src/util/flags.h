// Minimal command-line flag parsing for the CLI tools.
//
//   FlagSet flags("crius_sim", "Run a cluster-scheduling simulation");
//   std::string sched = "crius";
//   flags.String("scheduler", &sched, "crius|fcfs|gandiva|gavel|elasticflow");
//   if (!flags.Parse(argc, argv)) { return 1; }   // prints --help / errors
//
// Supports --name value and --name=value forms, bool flags as --name /
// --name=false, and a generated --help.

#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crius {

class FlagSet {
 public:
  FlagSet(std::string program, std::string description);

  // Registers a flag bound to `target` (which holds the default value).
  void String(const std::string& name, std::string* target, const std::string& help);
  void Int(const std::string& name, int64_t* target, const std::string& help);
  void Double(const std::string& name, double* target, const std::string& help);
  void Bool(const std::string& name, bool* target, const std::string& help);

  // Parses argv. Returns false (after printing a message) on --help or on any
  // unknown flag / malformed value. Positional arguments are collected into
  // positional().
  bool Parse(int argc, const char* const* argv);

  // Lenient variant for argv shared with another parser (the benches, whose
  // command line also carries Google Benchmark's flags): unknown flags are
  // skipped without consuming a following value token, and a malformed or
  // missing value for a known flag warns on stderr and keeps the default
  // instead of failing. Returns false only on --help.
  bool ParseKnown(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  // Renders the --help text.
  std::string Usage() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_value;
  };

  Flag* Find(const std::string& name);
  bool Assign(Flag& flag, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace crius

#endif  // SRC_UTIL_FLAGS_H_
