#include "src/runtime/gantt.h"

#include <cstdio>
#include <sstream>

#include "src/runtime/pipeline_engine.h"
#include "src/util/check.h"

namespace crius {

namespace {

char MicrobatchGlyph(int m) {
  if (m < 10) {
    return static_cast<char>('0' + m);
  }
  if (m < 36) {
    return static_cast<char>('A' + m - 10);
  }
  return static_cast<char>('a' + (m - 36) % 26);
}

}  // namespace

double PipelineBubbleFraction(const PerfModel& model, const JobContext& ctx,
                              const ParallelPlan& plan) {
  const PipelineEngine engine(&model);
  return engine.Execute(ctx, plan).BubbleFraction();
}

std::string RenderPipelineGantt(const PerfModel& model, const JobContext& ctx,
                                const ParallelPlan& plan, int width) {
  CRIUS_CHECK(width >= 8);
  const PipelineEngine engine(&model);
  const IterationTrace trace = engine.Execute(ctx, plan);
  const int nstages = trace.num_stages();
  const int b = trace.num_microbatches();
  const PlanEval eval = model.Evaluate(ctx, plan);

  std::ostringstream oss;
  char header[160];
  std::snprintf(header, sizeof(header),
                "%s  iter=%.3fs  microbatches=%d  bubble=%.1f%%\n", plan.ToString().c_str(),
                eval.feasible ? eval.iter_time : -1.0, b, trace.BubbleFraction() * 100.0);
  oss << header;

  const double quantum = trace.pipeline_makespan / static_cast<double>(width);
  for (int s = 0; s < nstages; ++s) {
    char label[16];
    std::snprintf(label, sizeof(label), "S%-2d |", s);
    oss << label;
    for (int col = 0; col < width; ++col) {
      const double t = (static_cast<double>(col) + 0.5) * quantum;
      char glyph = '.';
      for (int m = 0; m < b; ++m) {
        const StageInterval& iv = trace.At(s, m);
        if (t >= iv.start && t < iv.finish) {
          glyph = MicrobatchGlyph(m);
          break;
        }
      }
      oss << glyph;
    }
    oss << "|\n";
  }
  return oss.str();
}

}  // namespace crius
