// Event-driven pipeline execution engine.
//
// PerfModel::Evaluate computes iteration latency with the paper's closed-form
// §5.1 formula (first microbatch through all stages + (B-1) x slowest stage +
// exposed gradient sync). This engine *executes* the same plan at
// per-microbatch granularity under the true dependency structure:
//
//   start(s, m) = max(finish(s, m-1), finish(s-1, m) + boundary(s))
//
// and reports the realized timeline. It serves three purposes:
//   * validating the closed form (tests assert the two agree within a small
//     tolerance across the plan space -- the §5.1 approximation is the only
//     difference),
//   * per-stage busy/bubble accounting (the gantt rendering and utilization
//     numbers), and
//   * exporting Chrome-trace JSON (chrome://tracing / Perfetto) for real
//     timeline inspection, the way production training stacks are profiled.

#ifndef SRC_RUNTIME_PIPELINE_ENGINE_H_
#define SRC_RUNTIME_PIPELINE_ENGINE_H_

#include <iosfwd>
#include <vector>

#include "src/parallel/perf_model.h"

namespace crius {

// One stage x microbatch execution interval.
struct StageInterval {
  int stage = 0;
  int microbatch = 0;
  double start = 0.0;
  double finish = 0.0;
};

struct IterationTrace {
  // All intervals, ordered by (stage, microbatch).
  std::vector<StageInterval> intervals;
  // Per-microbatch stage latencies and inbound boundary-transfer times.
  std::vector<double> stage_time;
  std::vector<double> boundary_time;
  // Completion of the last microbatch at the last stage.
  double pipeline_makespan = 0.0;
  // Exposed gradient-synchronization time appended after the pipeline.
  double dp_sync = 0.0;
  // Full iteration latency (pipeline + exposed sync + fixed overhead).
  double total_time = 0.0;

  // Fraction of stage-time slots idle while the pipeline drains.
  double BubbleFraction() const;
  // Busy seconds of one stage.
  double StageBusySeconds(int stage) const;
  // The interval for (stage, microbatch). Aborts if out of range.
  const StageInterval& At(int stage, int microbatch) const;

  int num_stages() const { return static_cast<int>(stage_time.size()); }
  int num_microbatches() const {
    return stage_time.empty() ? 0 : static_cast<int>(intervals.size()) / num_stages();
  }
};

class PipelineEngine {
 public:
  explicit PipelineEngine(const PerfModel* model);

  // Executes one training iteration of `plan` and returns the realized
  // timeline. The plan must be structurally valid for ctx's graph.
  IterationTrace Execute(const JobContext& ctx, const ParallelPlan& plan) const;

 private:
  const PerfModel* model_;
};

// Writes the trace as Chrome-trace-format JSON (one row per pipeline stage;
// microbatches as complete events, the gradient sync as a final span).
// Loadable in chrome://tracing or https://ui.perfetto.dev.
void WriteChromeTrace(const IterationTrace& trace, const ParallelPlan& plan,
                      std::ostream& out);

}  // namespace crius

#endif  // SRC_RUNTIME_PIPELINE_ENGINE_H_
