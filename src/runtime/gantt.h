// ASCII Gantt rendering of a plan's pipeline schedule.
//
// Visualizes the §5.1 execution model: every stage processes B = 4 x S
// microbatches; the first microbatch ripples through the stages (including
// boundary transfers) and the steady state is paced by the slowest stage.
// Used by examples and handy when debugging why a plan's bubble is large.
//
//   S0 |00112233445566778899AB........|
//   S1 |..0011223344556677889..9AB....|
//
// Each column is one time quantum; the glyph is the microbatch index being
// computed ('.' = idle/bubble).

#ifndef SRC_RUNTIME_GANTT_H_
#define SRC_RUNTIME_GANTT_H_

#include <string>

#include "src/parallel/perf_model.h"

namespace crius {

// Renders the pipeline schedule of `plan` under `ctx`. `width` is the number
// of time columns used for the full iteration. Returns a multi-line string
// (one row per stage plus a header with the iteration time and bubble ratio).
std::string RenderPipelineGantt(const PerfModel& model, const JobContext& ctx,
                                const ParallelPlan& plan, int width = 96);

// Fraction of stage-time slots idle during one iteration (pipeline bubble).
double PipelineBubbleFraction(const PerfModel& model, const JobContext& ctx,
                              const ParallelPlan& plan);

}  // namespace crius

#endif  // SRC_RUNTIME_GANTT_H_
