#include "src/runtime/pipeline_engine.h"

#include <algorithm>
#include <ostream>

#include "src/util/check.h"
#include "src/util/counters.h"
#include "src/util/trace.h"

namespace crius {

double IterationTrace::BubbleFraction() const {
  if (intervals.empty() || pipeline_makespan <= 0.0) {
    return 0.0;
  }
  double busy = 0.0;
  for (const StageInterval& iv : intervals) {
    busy += iv.finish - iv.start;
  }
  const double total = pipeline_makespan * static_cast<double>(num_stages());
  return 1.0 - busy / total;
}

double IterationTrace::StageBusySeconds(int stage) const {
  double busy = 0.0;
  for (const StageInterval& iv : intervals) {
    if (iv.stage == stage) {
      busy += iv.finish - iv.start;
    }
  }
  return busy;
}

const StageInterval& IterationTrace::At(int stage, int microbatch) const {
  const int b = num_microbatches();
  CRIUS_CHECK(stage >= 0 && stage < num_stages());
  CRIUS_CHECK(microbatch >= 0 && microbatch < b);
  const size_t index = static_cast<size_t>(stage) * static_cast<size_t>(b) +
                       static_cast<size_t>(microbatch);
  return intervals[index];
}

PipelineEngine::PipelineEngine(const PerfModel* model) : model_(model) {
  CRIUS_CHECK(model != nullptr);
}

IterationTrace PipelineEngine::Execute(const JobContext& ctx, const ParallelPlan& plan) const {
  CRIUS_CHECK(ctx.graph != nullptr);
  CRIUS_TRACE_SPAN("engine.execute");
  CRIUS_COUNTER_INC("engine.executions");
  ValidatePlan(plan, *ctx.graph);
  const int nstages = plan.num_stages();
  const int b = plan.num_microbatches();
  const double microbatch =
      static_cast<double>(ctx.global_batch) / static_cast<double>(b);

  IterationTrace trace;
  trace.stage_time.resize(static_cast<size_t>(nstages));
  trace.boundary_time.assign(static_cast<size_t>(nstages), 0.0);

  // Per-stage latencies and inbound boundary costs from the model.
  double max_sync = 0.0;
  int gpu_offset = 0;
  for (int s = 0; s < nstages; ++s) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(s)];
    const StageEval ev = model_->EvalStage(ctx, StageRange{sp.op_begin, sp.op_end, sp.gpus},
                                           sp.dp, sp.tp, nstages, b);
    trace.stage_time[static_cast<size_t>(s)] = ev.t_microbatch;
    max_sync = std::max(max_sync, ev.t_dp_sync);
    if (s > 0) {
      const double bytes = ctx.graph->BoundaryBytes(sp.op_begin) * microbatch;
      const bool cross_node = (gpu_offset % ctx.topo.gpus_per_node) == 0;
      trace.boundary_time[static_cast<size_t>(s)] = model_->BoundaryTransferTime(
          ctx, bytes, plan.stages[static_cast<size_t>(s) - 1].tp, sp.tp, cross_node);
    }
    gpu_offset += sp.gpus;
  }

  // Dependency-exact execution.
  trace.intervals.reserve(static_cast<size_t>(nstages) * static_cast<size_t>(b));
  std::vector<double> prev_stage_finish(static_cast<size_t>(b), 0.0);
  for (int s = 0; s < nstages; ++s) {
    double own_free_at = 0.0;
    for (int m = 0; m < b; ++m) {
      double ready = own_free_at;
      if (s > 0) {
        ready = std::max(ready,
                         prev_stage_finish[static_cast<size_t>(m)] +
                             trace.boundary_time[static_cast<size_t>(s)]);
      }
      StageInterval iv;
      iv.stage = s;
      iv.microbatch = m;
      iv.start = ready;
      iv.finish = ready + trace.stage_time[static_cast<size_t>(s)];
      own_free_at = iv.finish;
      prev_stage_finish[static_cast<size_t>(m)] = iv.finish;
      trace.pipeline_makespan = std::max(trace.pipeline_makespan, iv.finish);
      trace.intervals.push_back(iv);
    }
  }

  trace.dp_sync = PerfModel::kDpSyncExposedFraction * max_sync;
  trace.total_time = trace.pipeline_makespan + trace.dp_sync + PerfModel::kIterOverhead;
  return trace;
}

void WriteChromeTrace(const IterationTrace& trace, const ParallelPlan& plan,
                      std::ostream& out) {
  // Chrome-trace "complete" events: ts/dur in microseconds, one tid per stage.
  out << "[";
  bool first = true;
  auto emit = [&](const std::string& name, int tid, double start, double dur) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n {\"name\": \"" << name << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
        << ", \"ts\": " << start * 1e6 << ", \"dur\": " << dur * 1e6 << "}";
  };
  for (const StageInterval& iv : trace.intervals) {
    const StagePlan& sp = plan.stages[static_cast<size_t>(iv.stage)];
    emit("mb" + std::to_string(iv.microbatch) + " (D" + std::to_string(sp.dp) + "T" +
             std::to_string(sp.tp) + ")",
         iv.stage, iv.start, iv.finish - iv.start);
  }
  if (trace.dp_sync > 0.0) {
    emit("grad all_reduce (exposed)", 0, trace.pipeline_makespan, trace.dp_sync);
  }
  out << "\n]\n";
}

}  // namespace crius
